//! Unified kernel entry point.
//!
//! `gemm` dispatches one W4A8 GEMM over the variant space the paper's
//! ablation explores (Figure 13): dequantization algorithm × pipeline
//! strategy. Baseline kernels for other precisions live in
//! [`crate::serial`] and are benchmarked directly.

use lq_quant::mat::Mat;

use crate::packed::{PackedLqqLinear, PackedQoqLinear};
use crate::pipeline::{w4a8_excp, w4a8_flat_parallel, w4a8_imfp};
pub use crate::pipeline::{Dequant, ParallelConfig};
use crate::serial::{w4a8_lqq_serial, w4a8_qoq_serial};

/// Pipeline strategy for the W4A8 kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Single-threaded, no pipeline (ablation baseline).
    Serial,
    /// Data-parallel workers, no load/compute specialisation.
    FlatParallel,
    /// Explicit coarse-grained pipeline: Load / Dequant / MMA roles.
    ExCp,
    /// Implicit fine-grained pipeline: Load producer + fused
    /// dequant-MMA consumers (the paper's LiquidGEMM configuration).
    ImFp,
}

/// W4A8 weights in either second-level scheme.
#[derive(Debug, Clone)]
pub enum W4A8Weights {
    /// LiquidQuant weights.
    Lqq(PackedLqqLinear),
    /// QServe/QoQ weights.
    Qoq(PackedQoqLinear),
}

impl W4A8Weights {
    /// Output channels.
    #[must_use]
    pub fn n(&self) -> usize {
        match self {
            W4A8Weights::Lqq(w) => w.n,
            W4A8Weights::Qoq(w) => w.n,
        }
    }

    /// Reduction dim.
    #[must_use]
    pub fn k(&self) -> usize {
        match self {
            W4A8Weights::Lqq(w) => w.k,
            W4A8Weights::Qoq(w) => w.k,
        }
    }

    /// The dequantization algorithm these weights require.
    #[must_use]
    pub fn dequant(&self) -> Dequant {
        match self {
            W4A8Weights::Lqq(_) => Dequant::Lqq,
            W4A8Weights::Qoq(_) => Dequant::Qoq,
        }
    }
}

/// Result of a GEMM call.
#[derive(Debug, Clone)]
pub struct GemmOutput {
    /// `M×N` FP32 output.
    pub y: Mat<f32>,
}

/// Run `Y = X·Wᵀ` with the selected kernel variant.
///
/// `x` is the INT8 activation matrix (`M×K`), `act_scales` the per-token
/// scales from dynamic quantization.
#[must_use]
pub fn gemm(
    x: &Mat<i8>,
    act_scales: &[f32],
    weights: &W4A8Weights,
    kind: KernelKind,
    cfg: ParallelConfig,
) -> GemmOutput {
    let y = match (kind, weights) {
        (KernelKind::Serial, W4A8Weights::Lqq(w)) => w4a8_lqq_serial(x, act_scales, w),
        (KernelKind::Serial, W4A8Weights::Qoq(w)) => w4a8_qoq_serial(x, act_scales, w),
        (KernelKind::FlatParallel, W4A8Weights::Lqq(w)) => {
            w4a8_flat_parallel(x, act_scales, Some(w), None, cfg)
        }
        (KernelKind::FlatParallel, W4A8Weights::Qoq(w)) => {
            w4a8_flat_parallel(x, act_scales, None, Some(w), cfg)
        }
        (KernelKind::ExCp, W4A8Weights::Lqq(w)) => w4a8_excp(x, act_scales, Some(w), None, cfg),
        (KernelKind::ExCp, W4A8Weights::Qoq(w)) => w4a8_excp(x, act_scales, None, Some(w), cfg),
        (KernelKind::ImFp, W4A8Weights::Lqq(w)) => w4a8_imfp(x, act_scales, Some(w), None, cfg),
        (KernelKind::ImFp, W4A8Weights::Qoq(w)) => w4a8_imfp(x, act_scales, None, Some(w), cfg),
    };
    GemmOutput { y }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::max_abs_diff;
    use lq_quant::act::QuantizedActivations;

    #[test]
    fn all_variants_agree() {
        let (m, n, k) = (5, 24, 128);
        let xf = Mat::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.19).sin());
        let wf = Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.03).cos());
        let qa = QuantizedActivations::quantize(&xf, None);
        let w = W4A8Weights::Lqq(PackedLqqLinear::quantize(&wf, 64));
        assert_eq!(w.n(), n);
        assert_eq!(w.k(), k);
        assert_eq!(w.dequant(), Dequant::Lqq);
        let cfg = ParallelConfig {
            workers: 3,
            task_rows: 5,
            stages: 3,
        };
        let base = gemm(&qa.q, &qa.scales, &w, KernelKind::Serial, cfg).y;
        for kind in [KernelKind::FlatParallel, KernelKind::ExCp, KernelKind::ImFp] {
            let y = gemm(&qa.q, &qa.scales, &w, kind, cfg).y;
            assert_eq!(max_abs_diff(&y, &base), 0.0, "{kind:?}");
        }
    }
}
