//! Tiled W4A8 kernel — the GPU-structured variant.
//!
//! The serial kernel in [`crate::serial`] loops output channels; this
//! variant mirrors the GPU decomposition of Figure 2 exactly: the
//! output is cut into `Mt×Nt` tiles, each tile runs a K main loop in
//! `Kt` steps, and each main-loop iteration dequantizes one weight
//! sub-tile and multiplies it against the activation sub-tile. The tile
//! structure is what the cost model (Eqs. 3–6) and the pipeline
//! simulator reason about, so having an executable twin keeps those
//! models honest: this kernel is bit-exact against the flat serial one.

use lq_layout::tiles::{TileConfig, TileIter};
use lq_quant::backend::PackedWeights;
use lq_quant::mat::Mat;

use crate::microkernel::{APanels, MicrokernelSet};
use crate::packed::PackedLqqLinear;
use crate::serial::MAX_GROUP;

/// Tiled W4A8 GEMM over any registered backend's dequantization, with
/// the process-wide microkernel family ([`MicrokernelSet::global`]).
#[must_use]
pub fn w4a8_tiled(
    x: &Mat<i8>,
    act_scales: &[f32],
    w: &dyn PackedWeights,
    tile: TileConfig,
) -> Mat<f32> {
    w4a8_tiled_with(MicrokernelSet::global(), x, act_scales, w, tile)
}

/// Tiled W4A8 GEMM over any registered backend's dequantization and an
/// explicit microkernel family.
///
/// `tile.kt` must be a multiple of the quantization group size; tiles
/// iterate in the persistent-kernel row-major order.
#[must_use]
pub fn w4a8_tiled_with(
    mk: MicrokernelSet,
    x: &Mat<i8>,
    act_scales: &[f32],
    w: &dyn PackedWeights,
    tile: TileConfig,
) -> Mat<f32> {
    let (n, k, group) = (w.n(), w.k(), w.group());
    assert_eq!(x.cols(), k, "K mismatch");
    assert_eq!(act_scales.len(), x.rows(), "one scale per token");
    assert!(group <= MAX_GROUP, "group size exceeds MAX_GROUP");
    assert_eq!(
        tile.kt % group,
        0,
        "Kt={} must be a multiple of the group size {}",
        tile.kt,
        group
    );
    let m = x.rows();
    mk.record_dispatch(m);
    let a = APanels::pack(x);
    let strip = mk.strip_width();
    let ch_scales = w.channel_scales();
    let mut out = Mat::zeros(m, n);
    let mut acc = vec![0i32; tile.mt * tile.nt];
    let mut wbuf = vec![0i8; strip * group];
    let groups_per_kt = tile.kt / group;

    for t in TileIter::new(tile, m, n) {
        let (th, tw) = (t.height(), t.width());
        acc[..th * tw].fill(0);
        // Main loop over K in Kt steps (the pipelined loop on GPU).
        let mut k0 = 0;
        while k0 < k {
            // Channels a strip at a time: each group is dequantized for
            // the whole strip, then the 1-row dot-strip kernel shares
            // every activation load across the strip's accumulators.
            for jb in (0..tw).step_by(strip) {
                let nr = strip.min(tw - jb);
                if nr < strip {
                    // Unused strip rows stay zero: their lanes are
                    // computed but never read back.
                    wbuf.fill(0);
                }
                for g in 0..groups_per_kt {
                    let k_abs = k0 + g * group;
                    if k_abs >= k {
                        break;
                    }
                    let gi = k_abs / group;
                    for r in 0..nr {
                        let row = t.n0 + jb + r;
                        w.dequant_row_group(row, gi, &mut wbuf[r * group..(r + 1) * group]);
                    }
                    let mut sacc = [0i32; 16];
                    for i in 0..th {
                        sacc[..strip].fill(0);
                        mk.dot_strip(&a, t.m0 + i, k_abs, group, &wbuf, &mut sacc[..strip]);
                        for r in 0..nr {
                            acc[i * tw + jb + r] += sacc[r];
                        }
                    }
                }
            }
            k0 += tile.kt;
        }
        // Epilogue for this tile.
        for i in 0..th {
            let a = act_scales[t.m0 + i];
            for j in 0..tw {
                let ch = ch_scales[t.n0 + j];
                out.set(t.m0 + i, t.n0 + j, acc[i * tw + j] as f32 * a * ch);
            }
        }
    }
    out
}

/// Tiled W4A8 GEMM with LiquidQuant dequantization (the historical
/// entry point; delegates to the backend-generic [`w4a8_tiled`]).
#[must_use]
pub fn w4a8_lqq_tiled(
    x: &Mat<i8>,
    act_scales: &[f32],
    w: &PackedLqqLinear,
    tile: TileConfig,
) -> Mat<f32> {
    w4a8_tiled(x, act_scales, w, tile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::max_abs_diff;
    use crate::serial::w4a8_lqq_serial;
    use lq_quant::act::QuantizedActivations;

    fn fixture(m: usize, n: usize, k: usize) -> (Mat<i8>, Vec<f32>, PackedLqqLinear) {
        let xf = Mat::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.017).sin() * 1.8);
        let wf = Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.009).cos());
        let qa = QuantizedActivations::quantize(&xf, None);
        (qa.q, qa.scales, PackedLqqLinear::quantize(&wf, 64))
    }

    #[test]
    fn tiled_matches_serial_exact_tiles() {
        let (x, s, w) = fixture(8, 32, 256);
        let want = w4a8_lqq_serial(&x, &s, &w);
        let got = w4a8_lqq_tiled(
            &x,
            &s,
            &w,
            TileConfig {
                mt: 4,
                nt: 16,
                kt: 64,
            },
        );
        assert_eq!(max_abs_diff(&got, &want), 0.0);
    }

    #[test]
    fn tiled_matches_serial_ragged_tiles() {
        // Tile sizes that do not divide the problem: edge tiles clip.
        let (x, s, w) = fixture(7, 30, 192);
        let want = w4a8_lqq_serial(&x, &s, &w);
        for (mt, nt, kt) in [(3, 7, 64), (5, 16, 128), (16, 64, 192)] {
            let got = w4a8_lqq_tiled(&x, &s, &w, TileConfig { mt, nt, kt });
            assert_eq!(max_abs_diff(&got, &want), 0.0, "tile {mt}x{nt}x{kt}");
        }
    }

    #[test]
    fn single_tile_covers_whole_problem() {
        let (x, s, w) = fixture(4, 8, 64);
        let want = w4a8_lqq_serial(&x, &s, &w);
        let got = w4a8_lqq_tiled(
            &x,
            &s,
            &w,
            TileConfig {
                mt: 64,
                nt: 128,
                kt: 64,
            },
        );
        assert_eq!(max_abs_diff(&got, &want), 0.0);
    }

    #[test]
    fn tiled_matches_serial_for_every_backend() {
        use lq_quant::backend::registry;
        let (x, s, _) = fixture(6, 24, 256);
        let wf = Mat::from_fn(24, 256, |r, c| ((r * 256 + c) as f32 * 0.009).cos());
        for backend in registry() {
            let packed = backend.pack(&wf, 64);
            let want = crate::serial::w4a8_serial(&x, &s, packed.as_ref());
            let got = w4a8_tiled(
                &x,
                &s,
                packed.as_ref(),
                TileConfig {
                    mt: 4,
                    nt: 10,
                    kt: 128,
                },
            );
            assert_eq!(max_abs_diff(&got, &want), 0.0, "backend {}", backend.id());
        }
    }

    #[test]
    #[should_panic(expected = "must be a multiple of the group size")]
    fn bad_kt_panics() {
        let (x, s, w) = fixture(2, 4, 128);
        let _ = w4a8_lqq_tiled(
            &x,
            &s,
            &w,
            TileConfig {
                mt: 2,
                nt: 2,
                kt: 32,
            },
        );
    }
}
