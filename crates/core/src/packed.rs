//! Kernel-ready weight containers, one per precision the paper
//! benchmarks (Figures 5, 12; Table 1).
//!
//! The W4A8 containers ([`PackedLqqLinear`], [`PackedQoqLinear`]) live
//! in `lq-quant` since the kernel-backend redesign (they are part of
//! the [`lq_quant::backend`] registry together with the LUT and
//! codebook backends) and are re-exported here unchanged. The
//! remaining baseline precisions keep their containers in this module:
//! each stores the weights in the exact memory format its kernel
//! streams, plus the scale metadata its epilogue needs, and reports
//! its weight-memory footprint for the serving simulator's memory
//! accounting.

use lq_quant::fp16::F16;
use lq_quant::fp8::f32_to_e4m3;
use lq_quant::level1::quantize_per_channel_i8;
use lq_quant::mat::Mat;

pub use lq_quant::codebook::PackedCodebookLinear;
pub use lq_quant::lut::PackedLutLinear;
pub use lq_quant::packed::{PackedLqqLinear, PackedQoqLinear};

/// W8A8 weights: plain INT8 rows, per-channel scales, no second level.
#[derive(Debug, Clone)]
pub struct W8A8Linear {
    /// INT8 weights, `N×K`.
    pub q: Mat<i8>,
    /// Per-channel scales.
    pub channel_scales: Vec<f32>,
}

impl W8A8Linear {
    /// Quantize FP weights per-channel to INT8 (full `[-127,127]` range
    /// is unnecessary here; we reuse the protective-range level-1 so the
    /// W8A8 and W4A8 kernels share their level-1 grid in comparisons).
    #[must_use]
    pub fn quantize(w: &Mat<f32>) -> Self {
        let l1 = quantize_per_channel_i8(w);
        Self {
            q: l1.q,
            channel_scales: l1.scales.iter().map(|s| s.scale).collect(),
        }
    }

    /// Weight bytes (1 byte per element + scales).
    #[must_use]
    pub fn weight_bytes(&self) -> usize {
        self.q.len() + self.channel_scales.len() * 4
    }
}

/// W4A16 weights: two-level UINT4 storage, dequantized to FP in-kernel,
/// FP activations.
#[derive(Debug, Clone)]
pub struct W4A16Linear {
    /// The packed LQQ weights (reuses the same storage machinery).
    pub packed: PackedLqqLinear,
}

impl W4A16Linear {
    /// Quantize FP weights (group-wise UINT4, like TRT-W4A16's AWQ-style
    /// format in spirit).
    #[must_use]
    pub fn quantize(w: &Mat<f32>, group: usize) -> Self {
        Self {
            packed: PackedLqqLinear::quantize(w, group),
        }
    }

    /// Weight bytes.
    #[must_use]
    pub fn weight_bytes(&self) -> usize {
        self.packed.weight_bytes()
    }
}

/// FP16 weights (baseline; compute in f32).
#[derive(Debug, Clone)]
pub struct Fp16Linear {
    /// Output channels.
    pub n: usize,
    /// Reduction dim.
    pub k: usize,
    /// binary16 weights, row-major.
    pub w: Vec<F16>,
}

impl Fp16Linear {
    /// Encode FP32 weights to binary16 storage.
    #[must_use]
    pub fn encode(w: &Mat<f32>) -> Self {
        Self {
            n: w.rows(),
            k: w.cols(),
            w: w.as_slice().iter().map(|&v| F16::from_f32(v)).collect(),
        }
    }

    /// One weight row.
    #[must_use]
    pub fn row(&self, r: usize) -> &[F16] {
        &self.w[r * self.k..(r + 1) * self.k]
    }

    /// Weight bytes.
    #[must_use]
    pub fn weight_bytes(&self) -> usize {
        self.w.len() * 2
    }
}

/// FP8 (E4M3) weights with per-channel scales (TRT-FP8 baseline).
#[derive(Debug, Clone)]
pub struct Fp8Linear {
    /// Output channels.
    pub n: usize,
    /// Reduction dim.
    pub k: usize,
    /// E4M3 codes, row-major.
    pub w: Vec<u8>,
    /// Per-channel scales (weights are scaled into E4M3's range).
    pub channel_scales: Vec<f32>,
}

impl Fp8Linear {
    /// Encode FP32 weights: scale each channel so its absmax maps to
    /// E4M3's max normal, then encode.
    #[must_use]
    pub fn encode(w: &Mat<f32>) -> Self {
        let mut codes = Vec::with_capacity(w.len());
        let mut scales = Vec::with_capacity(w.rows());
        for r in 0..w.rows() {
            let row = w.row(r);
            let absmax = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let scale = if absmax == 0.0 {
                1.0
            } else {
                absmax / lq_quant::fp8::E4M3_MAX
            };
            scales.push(scale);
            codes.extend(row.iter().map(|&v| f32_to_e4m3(v / scale)));
        }
        Self {
            n: w.rows(),
            k: w.cols(),
            w: codes,
            channel_scales: scales,
        }
    }

    /// One weight row (codes).
    #[must_use]
    pub fn row(&self, r: usize) -> &[u8] {
        &self.w[r * self.k..(r + 1) * self.k]
    }

    /// Weight bytes.
    #[must_use]
    pub fn weight_bytes(&self) -> usize {
        self.w.len() + self.channel_scales.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights(n: usize, k: usize) -> Mat<f32> {
        Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.17).sin() * 2.0)
    }

    #[test]
    fn weight_bytes_ordering_matches_precisions() {
        let w = weights(16, 256);
        let w4 = PackedLqqLinear::quantize(&w, 64).weight_bytes();
        let w8 = W8A8Linear::quantize(&w).weight_bytes();
        let w16 = Fp16Linear::encode(&w).weight_bytes();
        let w8f = Fp8Linear::encode(&w).weight_bytes();
        assert!(w4 < w8, "4-bit {w4} < 8-bit {w8}");
        assert!(w8 < w16, "8-bit {w8} < 16-bit {w16}");
        assert!((w8f as i64 - w8 as i64).unsigned_abs() < 200, "fp8 ≈ int8");
    }

    #[test]
    fn fp8_encode_roundtrip_is_close() {
        let w = weights(4, 64);
        let f = Fp8Linear::encode(&w);
        let lut = lq_quant::fp8::decode_lut();
        for r in 0..4 {
            for c in 0..64 {
                let back = lut[f.row(r)[c] as usize] * f.channel_scales[r];
                let orig = *w.get(r, c);
                assert!(
                    (back - orig).abs() <= orig.abs() / 8.0 + 0.05,
                    "{back} vs {orig}"
                );
            }
        }
    }
}
