//! # lq-trace — causal event tracing with Perfetto export
//!
//! The paper's performance story rests on *overlap*: the §5.4
//! persistent kernel and the ExCP/ImFP pipelines win only when dequant,
//! MMA, and load stages actually interleave across warp groups.
//! `lq-telemetry` can say *how much* time each stage took in aggregate;
//! it cannot say *when* — whether worker 2's MMA ran under worker 0's
//! dequant or after it, or how much of a request's latency was queueing
//! versus steal delay versus compute. This crate records the timeline:
//! fixed-size timestamped [`Event`]s in per-thread ring buffers,
//! correlated across threads by a causal request/job ID, exported as
//! Chrome trace-event JSON ([`chrome`], loadable in Perfetto) and
//! analysed for critical paths and stall attribution ([`analyze`]).
//!
//! ## Design
//!
//! * **std-only, always compiled, runtime-gated.** Like
//!   `lq_telemetry::enabled`, recording is gated on one process-global
//!   `AtomicBool`: until [`enable`] is called every record site is a
//!   relaxed load plus a branch, so the PR 4 hot loops are unperturbed
//!   (measured; see EXPERIMENTS.md "Tracing overhead").
//! * **Per-thread ring buffers.** Each recording thread is assigned one
//!   of [`SHARDS`] fixed-capacity rings on first use (round-robin), so
//!   a record never contends with another thread in steady state — the
//!   shard mutex is uncontended and costs one CAS, and the pool's
//!   worker threads each own their shard for the process lifetime.
//!   When a ring is full the **oldest** event is dropped (counted in
//!   [`dropped_total`] and mirrored to the `lq_trace_dropped_total`
//!   telemetry counter); recording never blocks.
//! * **Causal correlation.** A thread-local correlation ID
//!   ([`corr_scope`]) is stamped on every event and captured by the
//!   pool at job-submission time, so a serving request's events can be
//!   stitched across the submitting thread and every worker that
//!   touched one of its tiles. The serving runtime sets the scope to
//!   the request ID around prefill and to a synthetic batch-step ID
//!   (top bit set; see [`fresh_batch_corr`]) around each batched decode
//!   iteration, and emits per-request `ReqDecodeIter` events carrying
//!   that step ID — the join key.
//! * **Two clocks.** `ts_ns` is wall-clock nanoseconds since the
//!   tracer's epoch (a process `Instant`); `vts_ns` is the serving
//!   runtime's *virtual* clock (measured compute + idle jumps, in ns),
//!   0 for non-serving events. Request lifecycles are totally ordered
//!   by `vts_ns`; worker timelines by `ts_ns`.
//!
//! ## Event vocabulary
//!
//! | kind | site | payload `a` | payload `b` |
//! |------|------|-------------|-------------|
//! | `JobSubmit` | pool submit / self-forward | job id | designated worker |
//! | `JobStart` | worker loop | job id | 1 if stolen |
//! | `JobFinish` | worker loop (span) | job id | 0 |
//! | `JobRetry` | self-healing requeue | job id | attempt # |
//! | `WorkerQuarantine` | self-healing | job id (0 = probe) | 0 |
//! | `WorkerRespawn` | self-healing | 0 | 0 |
//! | `StageLoad` | pipeline caller (span) | first output channel `j0` | 0 |
//! | `StageCompute` | Flat/ImFP job (span) | `j0` | rows |
//! | `StageDequant` | ExCP stage 2 (span) | `j0` | rows |
//! | `StageMma` | ExCP stage 3 (span) | `j0` | rows |
//! | `ReqIngest` | serving ingest | prompt len | output len |
//! | `ReqAdmit` | serving admission | reserved tokens | 0 |
//! | `ReqPrefill` | serving prefill (span) | 0 | 0 |
//! | `ReqDecodeIter` | serving decode (span) | batch-step corr | batch size |
//! | `ReqComplete` | serving completion | status (see [`status_code`]) | generated tokens |
//! | `ReqPreempt` | serving preemption (KV released, re-queued) | tokens discarded | preemptor request id |
//! | `ReqReroute` | router failover re-queue | source replica | 0 |
//! | `KvReserve` | serving admission | pages reserved | 0 |
//! | `KvRelease` | serving release | 0 | 0 |
//! | `FaultFired` | lq-chaos injector | site index | scheduled index |
//! | `RouterRoute` | router shard decision | replica index | request id |
//! | `ReplicaKill` | chaos whole-replica failure | replica index | evacuated requests |
//! | `AllGather` | sharded GEMM column concat (span, one per shard) | shard index | shard count |
//! | `AllReduce` | sharded GEMM exact i64 sum (span, one per shard) | shard index | shard count |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod chrome;
pub mod json;

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of ring-buffer shards in a [`Tracer`]. Threads are assigned
/// round-robin, so up to this many threads record without sharing a
/// ring; beyond it, shards are shared (still correct, mildly contended).
pub const SHARDS: usize = 64;

/// Default per-shard ring capacity (events). At 64 bytes per event a
/// full tracer caps at `SHARDS * DEFAULT_CAPACITY * 64` ≈ 256 MiB only
/// if every shard is in use; in practice a handful of threads record.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// What happened (see the crate docs for the payload conventions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // the variant table lives in the crate docs
pub enum EventKind {
    JobSubmit,
    JobStart,
    JobFinish,
    JobRetry,
    WorkerQuarantine,
    WorkerRespawn,
    StageLoad,
    StageCompute,
    StageDequant,
    StageMma,
    ReqIngest,
    ReqAdmit,
    ReqPrefill,
    ReqDecodeIter,
    ReqComplete,
    ReqPreempt,
    ReqReroute,
    KvReserve,
    KvRelease,
    FaultFired,
    RouterRoute,
    ReplicaKill,
    AllGather,
    AllReduce,
}

impl EventKind {
    /// Stable display name (Chrome export slice titles).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::JobSubmit => "job_submit",
            EventKind::JobStart => "job_start",
            EventKind::JobFinish => "job_finish",
            EventKind::JobRetry => "job_retry",
            EventKind::WorkerQuarantine => "worker_quarantine",
            EventKind::WorkerRespawn => "worker_respawn",
            EventKind::StageLoad => "load",
            EventKind::StageCompute => "compute",
            EventKind::StageDequant => "dequant",
            EventKind::StageMma => "mma",
            EventKind::ReqIngest => "req_ingest",
            EventKind::ReqAdmit => "req_admit",
            EventKind::ReqPrefill => "req_prefill",
            EventKind::ReqDecodeIter => "req_decode_iter",
            EventKind::ReqComplete => "req_complete",
            EventKind::ReqPreempt => "req_preempt",
            EventKind::ReqReroute => "req_reroute",
            EventKind::KvReserve => "kv_reserve",
            EventKind::KvRelease => "kv_release",
            EventKind::FaultFired => "fault_fired",
            EventKind::RouterRoute => "router_route",
            EventKind::ReplicaKill => "replica_kill",
            EventKind::AllGather => "all_gather",
            EventKind::AllReduce => "all_reduce",
        }
    }

    /// Kinds recorded with a duration (Chrome `ph: "X"` complete
    /// slices); the rest are instants.
    #[must_use]
    pub fn is_span(self) -> bool {
        matches!(
            self,
            EventKind::JobFinish
                | EventKind::StageLoad
                | EventKind::StageCompute
                | EventKind::StageDequant
                | EventKind::StageMma
                | EventKind::ReqPrefill
                | EventKind::ReqDecodeIter
                | EventKind::AllGather
                | EventKind::AllReduce
        )
    }
}

/// Which timeline an event belongs to: one track per pool worker, one
/// per serving request, and a control track for the submitting thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Track {
    /// The submitting / serving-loop thread.
    Control,
    /// Pool worker slot `id` (stable across quarantine/respawn).
    Worker(u32),
    /// Serving request `id`.
    Request(u64),
}

/// One fixed-size trace record.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Wall-clock nanoseconds since the tracer's epoch.
    pub ts_ns: u64,
    /// Span duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Serving virtual-clock nanoseconds (0 for non-serving events).
    pub vts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Which timeline.
    pub track: Track,
    /// Causal correlation ID (request id, batch-step id, or 0).
    pub corr: u64,
    /// Kind-specific payload (see the crate docs).
    pub a: u64,
    /// Kind-specific payload (see the crate docs).
    pub b: u64,
}

/// Encode a serving completion status for `ReqComplete.a`.
/// 0 = finished, 1 = timed out, 2 = rejected, 3 = failed.
#[must_use]
pub fn status_code(finished: bool, timed_out: bool, rejected: bool) -> u64 {
    match (finished, timed_out, rejected) {
        (true, _, _) => 0,
        (_, true, _) => 1,
        (_, _, true) => 2,
        _ => 3,
    }
}

struct Ring {
    buf: VecDeque<Event>,
    cap: usize,
}

/// A trace collector: [`SHARDS`] ring buffers plus the epoch all
/// timestamps are relative to. Production code records into the
/// process-global tracer (via the free functions [`record`] /
/// [`span`]); tests build private instances to exercise overflow
/// without racing other tests.
pub struct Tracer {
    epoch: Instant,
    shards: Vec<Mutex<Ring>>,
    dropped: AtomicU64,
}

impl Tracer {
    /// A tracer whose rings each hold `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Ring {
                        buf: VecDeque::new(),
                        cap: capacity.max(1),
                    })
                })
                .collect(),
            dropped: AtomicU64::new(0),
        }
    }

    /// Nanoseconds since this tracer's epoch.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Nanoseconds from the epoch to `at` (0 if `at` predates it).
    #[must_use]
    pub fn ns_at(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    /// Append `ev` to `shard`'s ring, dropping the oldest event (never
    /// blocking) when full.
    pub fn push(&self, shard: usize, ev: Event) {
        let overflowed = {
            let mut r = self.shards[shard % SHARDS]
                .lock()
                .expect("trace shard poisoned");
            let full = r.buf.len() >= r.cap;
            if full {
                r.buf.pop_front();
            }
            r.buf.push_back(ev);
            full
        };
        if overflowed {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            if let Some(c) = dropped_counter() {
                c.inc();
            }
        }
    }

    /// Events dropped to ring overflow since construction.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drain every shard, returning all buffered events sorted by
    /// wall-clock timestamp.
    #[must_use]
    pub fn drain(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.lock().expect("trace shard poisoned").buf.drain(..));
        }
        out.sort_by_key(|e| (e.ts_ns, e.dur_ns));
        out
    }

    /// Buffered events across all shards (racy; for occupancy checks).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("trace shard poisoned").buf.len())
            .sum()
    }

    /// True when no shard holds an event.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Tracer> = OnceLock::new();
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
static NEXT_JOB: AtomicU64 = AtomicU64::new(1);
static NEXT_BATCH: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    static CORR: Cell<u64> = const { Cell::new(0) };
}

/// Is tracing enabled? Every record site checks this first; the
/// disabled path is one relaxed load and a branch.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn tracing on process-wide (the global tracer's epoch is fixed at
/// its first use, not here).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn tracing off process-wide. Buffered events stay drainable.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Enable tracing iff the environment asks for it
/// (`LQ_TRACE=1|true|on`). Returns the resulting state.
pub fn enable_from_env() -> bool {
    if matches!(
        std::env::var("LQ_TRACE").as_deref(),
        Ok("1") | Ok("true") | Ok("on")
    ) {
        enable();
    }
    enabled()
}

/// The process-global tracer (rings at [`DEFAULT_CAPACITY`]).
pub fn tracer() -> &'static Tracer {
    GLOBAL.get_or_init(Tracer::default)
}

/// Drain the global tracer: all buffered events, sorted by timestamp.
#[must_use]
pub fn take_events() -> Vec<Event> {
    tracer().drain()
}

/// Events dropped by the global tracer's rings since process start.
#[must_use]
pub fn dropped_total() -> u64 {
    tracer().dropped()
}

fn dropped_counter() -> Option<&'static Arc<lq_telemetry::Counter>> {
    if !lq_telemetry::enabled() {
        return None;
    }
    static C: OnceLock<Arc<lq_telemetry::Counter>> = OnceLock::new();
    Some(C.get_or_init(|| lq_telemetry::registry().counter("lq_trace_dropped_total")))
}

fn my_shard() -> usize {
    SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
        s.set(v);
        v
    })
}

/// The current thread's causal correlation ID (0 when outside any
/// [`corr_scope`]).
#[must_use]
pub fn current_corr() -> u64 {
    CORR.with(Cell::get)
}

/// Restores the previous correlation ID on drop (see [`corr_scope`]).
pub struct CorrGuard {
    prev: u64,
}

impl Drop for CorrGuard {
    fn drop(&mut self) {
        CORR.with(|c| c.set(self.prev));
    }
}

/// Set the calling thread's correlation ID for the guard's lifetime.
/// Everything recorded on this thread — and every pool job *submitted*
/// from it — carries `corr`, which is how a serving request's events
/// are stitched across worker threads. Scopes nest; the previous ID is
/// restored on drop.
#[must_use]
pub fn corr_scope(corr: u64) -> CorrGuard {
    let prev = CORR.with(|c| c.replace(corr));
    CorrGuard { prev }
}

/// A fresh pool-job ID (unique process-wide, never 0).
#[must_use]
pub fn fresh_job_id() -> u64 {
    NEXT_JOB.fetch_add(1, Ordering::Relaxed)
}

/// A fresh batched-decode-step correlation ID. The top bit is set so
/// synthetic step IDs can never collide with request IDs (which callers
/// choose freely below 2⁶³).
#[must_use]
pub fn fresh_batch_corr() -> u64 {
    (1u64 << 63) | NEXT_BATCH.fetch_add(1, Ordering::Relaxed)
}

/// Record an instant event on the global tracer, stamped with the
/// calling thread's correlation scope. No-op (one relaxed load) while
/// tracing is disabled.
#[inline]
pub fn record(kind: EventKind, track: Track, a: u64, b: u64) {
    if !enabled() {
        return;
    }
    record_at(kind, track, a, b, 0, 0);
}

/// [`record`] with an explicit correlation ID (used by pool workers,
/// which execute jobs on behalf of the *submitting* thread's scope).
#[inline]
pub fn record_corr(kind: EventKind, track: Track, corr: u64, a: u64, b: u64) {
    if !enabled() {
        return;
    }
    let t = tracer();
    t.push(
        my_shard(),
        Event {
            ts_ns: t.now_ns(),
            dur_ns: 0,
            vts_ns: 0,
            kind,
            track,
            corr,
            a,
            b,
        },
    );
}

/// Record an instant event carrying a serving virtual-clock timestamp.
#[inline]
pub fn record_virtual(kind: EventKind, track: Track, vts_ns: u64, a: u64, b: u64) {
    if !enabled() {
        return;
    }
    record_at(kind, track, a, b, 0, vts_ns);
}

fn record_at(kind: EventKind, track: Track, a: u64, b: u64, dur_ns: u64, vts_ns: u64) {
    let t = tracer();
    t.push(
        my_shard(),
        Event {
            ts_ns: t.now_ns(),
            dur_ns,
            vts_ns,
            kind,
            track,
            corr: current_corr(),
            a,
            b,
        },
    );
}

/// Record a completed span that began at `started`: `ts_ns` is the
/// start, `dur_ns` the elapsed time. Callers capture `started` only
/// when [`enabled`] (`enabled().then(Instant::now)`), so the disabled
/// path never reads the clock.
#[inline]
pub fn span(kind: EventKind, track: Track, a: u64, b: u64, started: Instant) {
    span_full(kind, track, current_corr(), a, b, started, 0);
}

/// [`span_full`] with an explicit duration instead of one measured
/// from `started` to now. Used where the caller accounts time on a
/// clock of its own — e.g. the serving runtime's virtual clock, whose
/// per-request decomposition must sum *exactly* to the request's
/// virtual latency: re-measuring the duration with `Instant` here
/// would overshoot the virtual advance by the recording overhead.
#[allow(clippy::too_many_arguments)]
pub fn span_exact(
    kind: EventKind,
    track: Track,
    corr: u64,
    a: u64,
    b: u64,
    started: Instant,
    dur_ns: u64,
    vts_ns: u64,
) {
    if !enabled() {
        return;
    }
    let t = tracer();
    t.push(
        my_shard(),
        Event {
            ts_ns: t.ns_at(started),
            dur_ns,
            vts_ns,
            kind,
            track,
            corr,
            a,
            b,
        },
    );
}

/// [`span`] with explicit correlation and virtual timestamp.
pub fn span_full(
    kind: EventKind,
    track: Track,
    corr: u64,
    a: u64,
    b: u64,
    started: Instant,
    vts_ns: u64,
) {
    if !enabled() {
        return;
    }
    let t = tracer();
    let ts_ns = t.ns_at(started);
    t.push(
        my_shard(),
        Event {
            ts_ns,
            dur_ns: t.now_ns().saturating_sub(ts_ns),
            vts_ns,
            kind,
            track,
            corr,
            a,
            b,
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests here use private `Tracer` instances wherever possible; the
    // ones that must touch the global ENABLED flag only ever enable it
    // (mirroring the lq-telemetry test convention), so parallel
    // execution stays safe.

    fn ev(ts: u64) -> Event {
        Event {
            ts_ns: ts,
            dur_ns: 0,
            vts_ns: 0,
            kind: EventKind::JobStart,
            track: Track::Worker(0),
            corr: 7,
            a: ts,
            b: 0,
        }
    }

    #[test]
    fn ring_overflow_drops_oldest_never_blocks() {
        let t = Tracer::new(4);
        for i in 0..10 {
            t.push(0, ev(i));
        }
        assert_eq!(t.dropped(), 6);
        let got = t.drain();
        assert_eq!(got.len(), 4);
        // The survivors are the newest four, still in order.
        let ts: Vec<u64> = got.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, [6, 7, 8, 9]);
        assert!(t.is_empty());
    }

    #[test]
    fn drain_merges_shards_sorted() {
        let t = Tracer::new(16);
        t.push(0, ev(5));
        t.push(1, ev(2));
        t.push(2, ev(9));
        t.push(1, ev(3));
        let ts: Vec<u64> = t.drain().iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, [2, 3, 5, 9]);
    }

    #[test]
    fn corr_scope_nests_and_restores() {
        assert_eq!(current_corr(), 0);
        {
            let _g = corr_scope(42);
            assert_eq!(current_corr(), 42);
            {
                let _h = corr_scope(7);
                assert_eq!(current_corr(), 7);
            }
            assert_eq!(current_corr(), 42);
        }
        assert_eq!(current_corr(), 0);
    }

    #[test]
    fn batch_corrs_have_top_bit_and_are_unique() {
        let a = fresh_batch_corr();
        let b = fresh_batch_corr();
        assert_ne!(a, b);
        assert!(a & (1 << 63) != 0);
        assert!(b & (1 << 63) != 0);
    }

    #[test]
    fn disabled_record_is_a_noop() {
        // Cannot assert on the global tracer contents without racing
        // enabled tests, but the gate itself is observable: when the
        // flag is off at call time, record() must not assign a shard
        // id as a side effect on a fresh thread.
        std::thread::spawn(|| {
            if !enabled() {
                record(EventKind::JobStart, Track::Worker(0), 0, 0);
                SHARD.with(|s| {
                    if !enabled() {
                        assert_eq!(s.get(), usize::MAX, "disabled record touched the tracer");
                    }
                });
            }
        })
        .join()
        .unwrap();
    }

    #[test]
    fn status_codes() {
        assert_eq!(status_code(true, false, false), 0);
        assert_eq!(status_code(false, true, false), 1);
        assert_eq!(status_code(false, false, true), 2);
        assert_eq!(status_code(false, false, false), 3);
    }
}
