//! Chrome trace-event (Perfetto-compatible) JSON export.
//!
//! Emits the classic `{"traceEvents": [...]}` object format that both
//! `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! open directly. Std-only, hand-serialized (the same discipline as
//! `lq_telemetry`'s exporters): every string we write comes from a
//! fixed vocabulary or an integer, so no general JSON escaping is
//! needed — asserted in debug builds anyway.
//!
//! Track mapping:
//!
//! * **pid 0 "control"** — the submitting / serving-loop thread
//!   ([`Track::Control`]).
//! * **pid 1 "pool"** — one tid per worker slot ([`Track::Worker`]).
//! * **pid 2 "requests"** — one tid per request ID
//!   ([`Track::Request`]), so each request's lifecycle renders as its
//!   own lane.
//!
//! Span kinds ([`EventKind::is_span`]) become complete slices
//! (`"ph": "X"`) with microsecond `ts`/`dur`; the rest become
//! thread-scoped instants (`"ph": "i"`, `"s": "t"`). Payloads ride in
//! `args` (`corr`, `a`, `b`, and `vts_us` when a virtual timestamp is
//! present) so they are inspectable in the Perfetto slice panel.

use crate::{Event, Track};
use std::fmt::Write as _;

fn push_us(out: &mut String, key: &str, ns: u64) {
    // Microseconds with nanosecond precision; Perfetto's `ts` unit.
    let _ = write!(out, "\"{key}\":{}.{:03}", ns / 1_000, ns % 1_000);
}

fn track_ids(t: Track) -> (u64, u64) {
    match t {
        Track::Control => (0, 0),
        Track::Worker(w) => (1, u64::from(w)),
        Track::Request(r) => (2, r),
    }
}

fn push_event(out: &mut String, ev: &Event) {
    let (pid, tid) = track_ids(ev.track);
    let name = ev.kind.name();
    debug_assert!(
        name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_'),
        "event names must not need JSON escaping"
    );
    out.push_str("{\"name\":\"");
    out.push_str(name);
    out.push_str("\",\"cat\":\"lq\",");
    if ev.kind.is_span() {
        out.push_str("\"ph\":\"X\",");
        push_us(out, "dur", ev.dur_ns);
        out.push(',');
    } else {
        out.push_str("\"ph\":\"i\",\"s\":\"t\",");
    }
    push_us(out, "ts", ev.ts_ns);
    let _ = write!(
        out,
        ",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"corr\":{},\"a\":{},\"b\":{}",
        ev.corr, ev.a, ev.b
    );
    if ev.vts_ns != 0 {
        out.push(',');
        push_us(out, "vts_us", ev.vts_ns);
    }
    out.push_str("}}");
}

fn push_meta(out: &mut String, name: &str, pid: u64, tid: Option<u64>, label: &str) {
    let _ = write!(out, "{{\"name\":\"{name}\",\"ph\":\"M\",\"pid\":{pid},");
    if let Some(tid) = tid {
        let _ = write!(out, "\"tid\":{tid},");
    }
    let _ = write!(out, "\"args\":{{\"name\":\"{label}\"}}}}");
}

/// Serialize `events` as a Chrome trace-event JSON document. The
/// result is a complete, self-contained file body — write it to disk
/// and drag it into Perfetto.
#[must_use]
pub fn export(events: &[Event]) -> String {
    // Name every track we are about to reference, workers and requests
    // sorted so the Perfetto track order is stable run-to-run.
    let mut workers: Vec<u64> = Vec::new();
    let mut requests: Vec<u64> = Vec::new();
    for ev in events {
        match ev.track {
            Track::Control => {}
            Track::Worker(w) => {
                if !workers.contains(&u64::from(w)) {
                    workers.push(u64::from(w));
                }
            }
            Track::Request(r) => {
                if !requests.contains(&r) {
                    requests.push(r);
                }
            }
        }
    }
    workers.sort_unstable();
    requests.sort_unstable();

    let mut out = String::with_capacity(events.len() * 128 + 1024);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };

    sep(&mut out);
    push_meta(&mut out, "process_name", 0, None, "control");
    sep(&mut out);
    push_meta(&mut out, "process_name", 1, None, "pool");
    sep(&mut out);
    push_meta(&mut out, "process_name", 2, None, "requests");
    sep(&mut out);
    push_meta(&mut out, "thread_name", 0, Some(0), "submit");
    for &w in &workers {
        sep(&mut out);
        push_meta(&mut out, "thread_name", 1, Some(w), &format!("worker {w}"));
    }
    for &r in &requests {
        sep(&mut out);
        push_meta(&mut out, "thread_name", 2, Some(r), &format!("request {r}"));
    }
    for ev in events {
        sep(&mut out);
        push_event(&mut out, ev);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{json, EventKind};

    fn ev(kind: EventKind, track: Track, ts: u64, dur: u64) -> Event {
        Event {
            ts_ns: ts,
            dur_ns: dur,
            vts_ns: if matches!(kind, EventKind::ReqIngest) {
                1_500
            } else {
                0
            },
            kind,
            track,
            corr: 9,
            a: 1,
            b: 2,
        }
    }

    #[test]
    fn export_is_valid_json_with_expected_shapes() {
        let events = [
            ev(EventKind::JobSubmit, Track::Control, 1_000, 0),
            ev(EventKind::JobFinish, Track::Worker(3), 2_500, 40_000),
            ev(EventKind::ReqIngest, Track::Request(12), 3_000, 0),
        ];
        let s = export(&events);
        json::validate(&s).expect("exporter must emit valid JSON");
        // Span → complete slice with microsecond duration.
        assert!(s.contains("\"ph\":\"X\",\"dur\":40.000,\"ts\":2.500"));
        // Instant → thread-scoped.
        assert!(s.contains("\"ph\":\"i\",\"s\":\"t\""));
        // Track metadata names every referenced lane.
        assert!(s.contains("\"args\":{\"name\":\"worker 3\"}"));
        assert!(s.contains("\"args\":{\"name\":\"request 12\"}"));
        // Virtual timestamps surface in args.
        assert!(s.contains("\"vts_us\":1.500"));
    }

    #[test]
    fn empty_trace_is_still_a_valid_document() {
        let s = export(&[]);
        json::validate(&s).expect("empty export must stay valid");
        assert!(s.starts_with("{\"traceEvents\":["));
    }
}
