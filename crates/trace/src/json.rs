//! Minimal recursive-descent JSON validator.
//!
//! The sandbox has no JSON parser crate, yet the CI trace-smoke step
//! and the bench `--trace` flag must prove the exported document
//! *parses* — a string-contains check would accept truncated output.
//! This module validates full RFC 8259 syntax (objects, arrays,
//! strings with escapes, numbers, literals) without building a DOM:
//! one pass, no allocation beyond the recursion stack, with a depth
//! cap so adversarial input cannot overflow it.

/// Maximum nesting depth accepted by [`validate`]; trace documents are
/// three levels deep, so 64 is generous.
const MAX_DEPTH: usize = 64;

struct P<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> P<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.bump() == Some(c) {
            Ok(())
        } else {
            self.i = self.i.saturating_sub(1);
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &[u8]) -> Result<(), String> {
        if self.s[self.i..].starts_with(lit) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.value(depth + 1)?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => {
                    self.i = self.i.saturating_sub(1);
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.value(depth + 1)?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                _ => {
                    self.i = self.i.saturating_sub(1);
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            match self.bump() {
                                Some(c) if c.is_ascii_hexdigit() => {}
                                _ => return Err(self.err("bad \\u escape")),
                            }
                        }
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => {}
            }
        }
    }

    fn digits(&mut self) -> Result<(), String> {
        let start = self.i;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        if self.i == start {
            Err(self.err("expected digit"))
        } else {
            Ok(())
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        match self.peek() {
            Some(b'0') => self.i += 1,
            Some(b'1'..=b'9') => self.digits()?,
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            self.digits()?;
        }
        Ok(())
    }
}

/// Check that `s` is one complete, syntactically valid JSON document.
///
/// # Errors
/// A human-readable message with the byte offset of the first problem.
pub fn validate(s: &str) -> Result<(), String> {
    let mut p = P {
        s: s.as_bytes(),
        i: 0,
    };
    p.value(0)?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(p.err("trailing bytes after document"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_valid_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-0.5e+10",
            r#"{"a":[1,2.5,{"b":"x\n\u00e9"},true,false,null]}"#,
            "  [ 1 , 2 ]  ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("rejected {ok:?}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01",
            "1.",
            "\"abc",
            "\"\\q\"",
            "\"\\u12g4\"",
            "{} extra",
            "[1 2]",
            "tru",
        ] {
            assert!(validate(bad).is_err(), "accepted invalid {bad:?}");
        }
    }

    #[test]
    fn depth_cap_rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(validate(&deep).is_err());
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(validate(&ok).is_ok());
    }
}
