//! Trace analysis: critical paths and stall attribution.
//!
//! Turns a drained event stream into the two summaries the ROADMAP's
//! APEX4-style rebalancing work needs:
//!
//! * [`pool_attribution`] — where pool jobs spent their lives:
//!   **queueing** (submit → start on the designated worker), **steal
//!   delay** (submit → start when another worker stole the job), and
//!   **compute** (start → finish), plus the **worker-overlap ratio**
//!   (aggregate compute ÷ workers × wall — 1.0 means every worker was
//!   busy for the whole trace window).
//! * [`request_paths`] — per-request latency decomposition on the
//!   serving runtime's *virtual* clock: admission queueing, prefill,
//!   decode-iteration wait, and an `other` residual (batch-mate
//!   prefills, scheduler passes, idle jumps). The total equals the
//!   `lq_serving_request_latency_ns` histogram's per-request sample by
//!   construction, which is what the acceptance check in
//!   `examples/trace.rs` pins to within 5%.
//! * [`shard_collectives`] — per-collective shard-skew attribution for
//!   tensor-parallel GEMM calls: each `AllGather`/`AllReduce` barrier
//!   emits one span per shard, and the wait the barrier pays is the
//!   slowest-minus-fastest gap (`skew_ns`). A well-balanced sharded
//!   layer keeps `skew_ns` small relative to `slowest_ns`.

use crate::{Event, EventKind, Track};
use std::collections::HashMap;

/// Where the pool's jobs spent their time (all nanoseconds, summed
/// over every job in the trace).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PoolAttribution {
    /// Jobs that both started and finished inside the trace window.
    pub jobs: u64,
    /// Of those, how many ran on a worker other than the one they were
    /// placed on (work-stealing).
    pub stolen_jobs: u64,
    /// Submit → start delay for jobs run by their designated worker.
    pub queue_ns: u64,
    /// Submit → start delay for stolen jobs.
    pub steal_ns: u64,
    /// Start → finish execution time.
    pub compute_ns: u64,
    /// Trace window: first job start to last job finish.
    pub wall_ns: u64,
    /// Distinct worker slots that finished at least one job.
    pub workers: u64,
    /// `compute_ns / (workers * wall_ns)` — fraction of the pool's
    /// capacity spent computing. 1.0 is perfect overlap.
    pub overlap_ratio: f64,
}

/// One request's latency decomposition (virtual-clock nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestPath {
    /// Request ID (the `Track::Request` lane).
    pub id: u64,
    /// Completion status code (see [`crate::status_code`]); `u64::MAX`
    /// when the trace window closed before the request completed.
    pub status: u64,
    /// Ingest → admission (time spent in the arrival queue).
    pub queue_ns: u64,
    /// Measured prefill span for this request.
    pub prefill_ns: u64,
    /// Summed decode-iteration waits (each iteration costs the full
    /// batched step, which is exactly what the request's latency sees).
    pub decode_ns: u64,
    /// Residual: batch-mate prefills, scheduler passes, idle jumps.
    pub other_ns: u64,
    /// Ingest → completion on the virtual clock — matches the
    /// `lq_serving_request_latency_ns` histogram sample.
    pub total_ns: u64,
    /// Decode iterations this request participated in.
    pub decode_steps: u64,
}

/// Compute pool-side attribution from a drained event stream. Events
/// may be unsorted; jobs missing either endpoint (submitted before the
/// trace started, still running at drain) are ignored.
#[must_use]
pub fn pool_attribution(events: &[Event]) -> PoolAttribution {
    // job id → (submit ts, start ts, stolen, finish span).
    #[derive(Default, Clone, Copy)]
    struct JobRec {
        submit: Option<u64>,
        start: Option<(u64, bool)>,
        finish: Option<(u64, u64)>,
    }
    let mut jobs: HashMap<u64, JobRec> = HashMap::new();
    let mut workers: Vec<u32> = Vec::new();
    for ev in events {
        match ev.kind {
            EventKind::JobSubmit => jobs.entry(ev.a).or_default().submit = Some(ev.ts_ns),
            EventKind::JobStart => {
                jobs.entry(ev.a).or_default().start = Some((ev.ts_ns, ev.b != 0));
            }
            EventKind::JobFinish => {
                jobs.entry(ev.a).or_default().finish = Some((ev.ts_ns, ev.dur_ns));
                if let Track::Worker(w) = ev.track {
                    if !workers.contains(&w) {
                        workers.push(w);
                    }
                }
            }
            _ => {}
        }
    }

    let mut out = PoolAttribution {
        workers: workers.len() as u64,
        ..Default::default()
    };
    let mut window: Option<(u64, u64)> = None;
    for rec in jobs.values() {
        let (Some((start, stolen)), Some((fts, fdur))) = (rec.start, rec.finish) else {
            continue;
        };
        out.jobs += 1;
        out.compute_ns += fdur;
        if let Some(submit) = rec.submit {
            let wait = start.saturating_sub(submit);
            if stolen {
                out.stolen_jobs += 1;
                out.steal_ns += wait;
            } else {
                out.queue_ns += wait;
            }
        }
        let (lo, hi) = window.unwrap_or((u64::MAX, 0));
        window = Some((lo.min(fts), hi.max(fts + fdur)));
    }
    if let Some((lo, hi)) = window {
        out.wall_ns = hi - lo;
    }
    if out.workers > 0 && out.wall_ns > 0 {
        out.overlap_ratio = out.compute_ns as f64 / (out.workers * out.wall_ns) as f64;
    }
    out
}

/// Reconstruct per-request critical paths from the serving-lifecycle
/// events, sorted by request ID. Requests without both an ingest and a
/// completion inside the window are skipped.
#[must_use]
pub fn request_paths(events: &[Event]) -> Vec<RequestPath> {
    #[derive(Default)]
    struct ReqRec {
        ingest_vts: Option<u64>,
        admit_vts: Option<u64>,
        complete: Option<(u64, u64)>, // (vts, status)
        prefill_ns: u64,
        decode_ns: u64,
        decode_steps: u64,
    }
    let mut reqs: HashMap<u64, ReqRec> = HashMap::new();
    for ev in events {
        let Track::Request(id) = ev.track else {
            continue;
        };
        let r = reqs.entry(id).or_default();
        match ev.kind {
            EventKind::ReqIngest => r.ingest_vts = Some(ev.vts_ns),
            EventKind::ReqAdmit => r.admit_vts = Some(ev.vts_ns),
            EventKind::ReqPrefill => r.prefill_ns += ev.dur_ns,
            EventKind::ReqDecodeIter => {
                r.decode_ns += ev.dur_ns;
                r.decode_steps += 1;
            }
            EventKind::ReqComplete => r.complete = Some((ev.vts_ns, ev.a)),
            _ => {}
        }
    }

    let mut out: Vec<RequestPath> = reqs
        .into_iter()
        .filter_map(|(id, r)| {
            let ingest = r.ingest_vts?;
            let (complete_vts, status) = r.complete?;
            let total_ns = complete_vts.saturating_sub(ingest);
            let queue_ns = r.admit_vts.map_or(0, |a| a.saturating_sub(ingest));
            let accounted = queue_ns + r.prefill_ns + r.decode_ns;
            Some(RequestPath {
                id,
                status,
                queue_ns,
                prefill_ns: r.prefill_ns,
                decode_ns: r.decode_ns,
                other_ns: total_ns.saturating_sub(accounted),
                total_ns,
                decode_steps: r.decode_steps,
            })
        })
        .collect();
    out.sort_unstable_by_key(|r| r.id);
    out
}

/// One tensor-parallel collective (all shards of one barrier) and its
/// skew attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardCollective {
    /// Correlation ID the collective's spans carried.
    pub corr: u64,
    /// `AllGather` (column-parallel concat) or `AllReduce`
    /// (row-parallel exact sum).
    pub kind: EventKind,
    /// Shard count (`b` on every span of the group).
    pub shards: u64,
    /// Slowest shard's span duration — the barrier's cost.
    pub slowest_ns: u64,
    /// Fastest shard's span duration.
    pub fastest_ns: u64,
    /// `slowest - fastest`: wall time the fastest shard spent waiting
    /// on the barrier (shard-skew wait).
    pub skew_ns: u64,
}

/// Group `AllGather`/`AllReduce` spans into per-call collectives and
/// attribute shard-skew wait time.
///
/// Spans group by `(corr, kind)` and then chunk in start-time order
/// into groups of `b` (the shard count each span carries) — valid
/// because a sharded GEMM call joins all its shards before returning,
/// so same-correlation calls never interleave. Trailing partial groups
/// (a call in flight at drain) are dropped.
#[must_use]
pub fn shard_collectives(events: &[Event]) -> Vec<ShardCollective> {
    let mut groups: HashMap<(u64, bool), Vec<&Event>> = HashMap::new();
    for ev in events {
        match ev.kind {
            EventKind::AllGather => groups.entry((ev.corr, false)).or_default().push(ev),
            EventKind::AllReduce => groups.entry((ev.corr, true)).or_default().push(ev),
            _ => {}
        }
    }
    let mut out = Vec::new();
    for ((corr, reduce), mut evs) in groups {
        evs.sort_by_key(|e| e.ts_ns);
        let mut at = 0;
        while at < evs.len() {
            let shards = evs[at].b.max(1) as usize;
            if at + shards > evs.len() {
                break; // call still in flight at drain
            }
            let chunk = &evs[at..at + shards];
            let slowest = chunk.iter().map(|e| e.dur_ns).max().unwrap_or(0);
            let fastest = chunk.iter().map(|e| e.dur_ns).min().unwrap_or(0);
            out.push(ShardCollective {
                corr,
                kind: if reduce {
                    EventKind::AllReduce
                } else {
                    EventKind::AllGather
                },
                shards: shards as u64,
                slowest_ns: slowest,
                fastest_ns: fastest,
                skew_ns: slowest - fastest,
            });
            at += shards;
        }
    }
    out.sort_unstable_by_key(|c| (c.corr, c.kind as u64, c.slowest_ns));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status_code;

    fn e(kind: EventKind, track: Track, ts: u64, dur: u64, vts: u64, a: u64, b: u64) -> Event {
        Event {
            ts_ns: ts,
            dur_ns: dur,
            vts_ns: vts,
            kind,
            track,
            corr: 0,
            a,
            b,
        }
    }

    #[test]
    fn pool_attribution_splits_queue_steal_compute() {
        let evs = [
            // Job 1: placed on worker 0, run there. 100ns queue, 400ns compute.
            e(EventKind::JobSubmit, Track::Control, 0, 0, 0, 1, 0),
            e(EventKind::JobStart, Track::Worker(0), 100, 0, 0, 1, 0),
            e(EventKind::JobFinish, Track::Worker(0), 100, 400, 0, 1, 0),
            // Job 2: placed on worker 0, stolen by worker 1. 250ns steal
            // delay, 250ns compute.
            e(EventKind::JobSubmit, Track::Control, 50, 0, 0, 2, 0),
            e(EventKind::JobStart, Track::Worker(1), 300, 0, 0, 2, 1),
            e(EventKind::JobFinish, Track::Worker(1), 300, 250, 0, 2, 0),
            // Job 3: still running at drain — ignored.
            e(EventKind::JobSubmit, Track::Control, 60, 0, 0, 3, 0),
            e(EventKind::JobStart, Track::Worker(0), 600, 0, 0, 3, 0),
        ];
        let a = pool_attribution(&evs);
        assert_eq!(a.jobs, 2);
        assert_eq!(a.stolen_jobs, 1);
        assert_eq!(a.queue_ns, 100);
        assert_eq!(a.steal_ns, 250);
        assert_eq!(a.compute_ns, 650);
        // Window: first finish-start 100 → last finish-end 550.
        assert_eq!(a.wall_ns, 450);
        assert_eq!(a.workers, 2);
        let expect = 650.0 / (2.0 * 450.0);
        assert!((a.overlap_ratio - expect).abs() < 1e-12);
    }

    #[test]
    fn request_paths_decompose_and_sum_to_total() {
        let rid = 7;
        let t = Track::Request(rid);
        let evs = [
            e(EventKind::ReqIngest, t, 0, 0, 1_000, 16, 64),
            e(EventKind::ReqAdmit, t, 10, 0, 1_400, 80, 0),
            e(EventKind::ReqPrefill, t, 20, 300, 1_400, 0, 0),
            e(EventKind::ReqDecodeIter, t, 40, 500, 1_700, 99, 4),
            e(EventKind::ReqDecodeIter, t, 60, 600, 2_200, 100, 4),
            e(
                EventKind::ReqComplete,
                t,
                80,
                0,
                3_000,
                status_code(true, false, false),
                64,
            ),
        ];
        let paths = request_paths(&evs);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.id, rid);
        assert_eq!(p.status, 0);
        assert_eq!(p.queue_ns, 400);
        assert_eq!(p.prefill_ns, 300);
        assert_eq!(p.decode_ns, 1_100);
        assert_eq!(p.decode_steps, 2);
        assert_eq!(p.total_ns, 2_000);
        assert_eq!(
            p.queue_ns + p.prefill_ns + p.decode_ns + p.other_ns,
            p.total_ns,
            "decomposition must sum to the total"
        );
    }

    fn coll(kind: EventKind, corr: u64, ts: u64, dur: u64, shard: u64, shards: u64) -> Event {
        Event {
            ts_ns: ts,
            dur_ns: dur,
            vts_ns: 0,
            kind,
            track: Track::Control,
            corr,
            a: shard,
            b: shards,
        }
    }

    #[test]
    fn shard_collectives_attribute_skew_per_call() {
        let evs = [
            // Call 1 (corr 9): 2-shard all-gather, durations 100/140.
            coll(EventKind::AllGather, 9, 10, 140, 0, 2),
            coll(EventKind::AllGather, 9, 12, 100, 1, 2),
            // Call 2 (corr 9, same corr — later in time): durations 200/200.
            coll(EventKind::AllGather, 9, 500, 200, 0, 2),
            coll(EventKind::AllGather, 9, 501, 200, 1, 2),
            // A 3-shard all-reduce on another correlation.
            coll(EventKind::AllReduce, 4, 50, 300, 0, 3),
            coll(EventKind::AllReduce, 4, 51, 250, 1, 3),
            coll(EventKind::AllReduce, 4, 52, 330, 2, 3),
            // In-flight at drain: only 1 of 2 spans present — dropped.
            coll(EventKind::AllGather, 7, 900, 50, 0, 2),
        ];
        let cs = shard_collectives(&evs);
        assert_eq!(cs.len(), 3);
        let reduce = cs.iter().find(|c| c.kind == EventKind::AllReduce).unwrap();
        assert_eq!((reduce.corr, reduce.shards), (4, 3));
        assert_eq!(
            (reduce.slowest_ns, reduce.fastest_ns, reduce.skew_ns),
            (330, 250, 80)
        );
        let gathers: Vec<_> = cs
            .iter()
            .filter(|c| c.kind == EventKind::AllGather)
            .collect();
        assert_eq!(gathers.len(), 2);
        assert!(gathers.iter().all(|c| c.corr == 9));
        assert_eq!(gathers[0].skew_ns, 40);
        assert_eq!(gathers[1].skew_ns, 0);
    }

    #[test]
    fn shard_collectives_ignore_unrelated_events() {
        let evs = [e(EventKind::JobSubmit, Track::Control, 0, 0, 0, 1, 0)];
        assert!(shard_collectives(&evs).is_empty());
    }

    #[test]
    fn incomplete_requests_are_skipped() {
        let evs = [e(
            EventKind::ReqIngest,
            Track::Request(1),
            0,
            0,
            1_000,
            4,
            4,
        )];
        assert!(request_paths(&evs).is_empty());
    }
}
