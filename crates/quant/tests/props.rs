//! Randomized property tests for the quantization stack (seeded
//! in-tree PRNG; offline sandbox has no proptest).

use lq_quant::act::quantize_token;
use lq_quant::fp16::F16;
use lq_quant::fp8::{e4m3_to_f32, f32_to_e4m3};
use lq_quant::level1::{quantize_channel, PROTECTIVE_MAX};
use lq_quant::lqq::{LqqGroup, LqqTensor};
use lq_quant::mat::Mat;
use lq_quant::qoq::QoqGroup;
use lq_rng::Rng;
use lq_swar::audit::CountingAlu;
use lq_swar::unpack::pack8_u4;

const CASES: usize = 256;

fn protective_group(rng: &mut Rng, max_len: usize) -> Vec<i8> {
    let len = rng.range_usize(1, max_len);
    (0..len)
        .map(|_| rng.range_i8(-PROTECTIVE_MAX, PROTECTIVE_MAX))
        .collect()
}

fn protective_group8(rng: &mut Rng) -> [i8; 8] {
    std::array::from_fn(|_| rng.range_i8(-PROTECTIVE_MAX, PROTECTIVE_MAX))
}

/// LQQ sweet dequantization equals the scalar reference for every
/// group drawn from the protective range — the paper's Eq. 12.
#[test]
fn lqq_sweet_matches_scalar() {
    let mut rng = Rng::new(0x9A17_0001);
    for _ in 0..CASES {
        let group = protective_group(&mut rng, 64);
        let (p, codes) = LqqGroup::quantize(&group);
        assert!(p.s_u8 >= 1 && p.s_u8 <= 16);
        for &c in &codes {
            assert!(c < 16);
            assert_eq!(p.dequant_sweet(c), p.dequant_scalar(c));
        }
    }
}

/// The packed register path equals the scalar path for all groups of
/// 8, and always costs exactly 7 counted instructions.
#[test]
fn lqq_packed_matches_scalar() {
    let mut rng = Rng::new(0x9A17_0002);
    for _ in 0..CASES {
        let group = protective_group8(&mut rng);
        let (p, codes) = LqqGroup::quantize(&group);
        let packed = pack8_u4([
            codes[0], codes[1], codes[2], codes[3], codes[4], codes[5], codes[6], codes[7],
        ]);
        let mut alu = CountingAlu::new();
        let out = p.dequant8_ordered(&mut alu, packed);
        assert_eq!(alu.count().total(), 7);
        for i in 0..8 {
            assert_eq!(out[i], p.dequant_scalar(codes[i]));
        }
    }
}

/// The overflow-freedom invariant: every intermediate of the sweet
/// path stays within u8 for codes produced by quantization.
#[test]
fn lqq_intermediates_never_overflow() {
    let mut rng = Rng::new(0x9A17_0003);
    for _ in 0..CASES {
        let group = protective_group(&mut rng, 64);
        let (p, codes) = LqqGroup::quantize(&group);
        let a = u16::from(p.offset_a());
        for &c in &codes {
            let prod = u16::from(c) * u16::from(p.s_u8);
            assert!(prod <= 240, "product {prod}");
            assert!(prod + a <= 255, "sum {}", prod + a);
        }
    }
}

/// QoQ packed path equals scalar and costs 19 instructions.
#[test]
fn qoq_packed_matches_scalar() {
    let mut rng = Rng::new(0x9A17_0004);
    for _ in 0..CASES {
        let group = protective_group8(&mut rng);
        let (p, codes) = QoqGroup::quantize(&group);
        let packed = pack8_u4([
            codes[0], codes[1], codes[2], codes[3], codes[4], codes[5], codes[6], codes[7],
        ]);
        let mut alu = CountingAlu::new();
        let out = p.dequant8_ordered(&mut alu, packed);
        assert_eq!(alu.count().total(), 19);
        for i in 0..8 {
            assert_eq!(out[i], p.dequant_scalar(codes[i]));
        }
    }
}

/// LQQ round-trip error is bounded by half the group step (+1 for
/// the clamped top code).
#[test]
fn lqq_roundtrip_error_bound() {
    let mut rng = Rng::new(0x9A17_0005);
    for _ in 0..CASES {
        let group = protective_group(&mut rng, 128);
        let (p, codes) = LqqGroup::quantize(&group);
        for (&orig, &c) in group.iter().zip(codes.iter()) {
            let back = p.dequant_scalar(c);
            let err = (i16::from(back) - i16::from(orig)).abs();
            // Half-step rounding error, except the clamped top code,
            // whose error is bounded by range - 15*s <= 8 (s = round(range/15)).
            let bound = i16::from(p.s_u8 / 2 + 1).max(8);
            assert!(err <= bound, "err {err} step {}", p.s_u8);
        }
    }
}

/// Level-1 quantization keeps all outputs in the protective range
/// and bounds the relative error by half a step.
#[test]
fn level1_protective_and_bounded() {
    let mut rng = Rng::new(0x9A17_0006);
    for _ in 0..CASES {
        let len = rng.range_usize(1, 64);
        let row = rng.vec_f32(len, -1e3, 1e3);
        let mut out = vec![0i8; row.len()];
        let s = quantize_channel(&row, &mut out);
        for (&q, &v) in out.iter().zip(row.iter()) {
            assert!((-PROTECTIVE_MAX..=PROTECTIVE_MAX).contains(&q));
            if s.scale > 0.0 {
                assert!((f32::from(q) * s.scale - v).abs() <= s.scale / 2.0 + 1e-4);
            }
        }
    }
}

/// Activation quantization bounds error by half a step.
#[test]
fn act_quant_bounded() {
    let mut rng = Rng::new(0x9A17_0007);
    for _ in 0..CASES {
        let len = rng.range_usize(1, 64);
        let row = rng.vec_f32(len, -1e2, 1e2);
        let mut out = vec![0i8; row.len()];
        let s = quantize_token(&row, &mut out);
        for (&q, &v) in out.iter().zip(row.iter()) {
            if s > 0.0 {
                assert!((f32::from(q) * s - v).abs() <= s / 2.0 + 1e-4);
            }
        }
    }
}

/// FP8 E4M3: decoded round-trip of arbitrary floats is within one
/// ULP-of-E4M3.
#[test]
fn fp8_roundtrip_error() {
    let mut rng = Rng::new(0x9A17_0008);
    for _ in 0..CASES {
        let x = rng.range_f32(-400.0, 400.0);
        let v = e4m3_to_f32(f32_to_e4m3(x));
        // Worst-case spacing around |x| is 2^(e-3) where e = exponent.
        let spacing = if x == 0.0 {
            2f32.powi(-9)
        } else {
            2f32.powf(x.abs().log2().floor()) / 8.0
        };
        assert!((v - x).abs() <= spacing / 2.0 + 1e-9, "x={x} v={v}");
    }
}

/// FP16: decode∘encode is within half an f16 ULP for in-range values.
#[test]
fn fp16_roundtrip_error() {
    let mut rng = Rng::new(0x9A17_0009);
    for _ in 0..CASES {
        let x = rng.range_f32(-6e4, 6e4);
        let v = F16::from_f32(x).to_f32();
        let spacing = if x == 0.0 {
            2f32.powi(-24)
        } else {
            (2f32.powf(x.abs().log2().floor()) * 2f32.powi(-10)).max(2f32.powi(-24))
        };
        assert!((v - x).abs() <= spacing / 2.0 + 1e-9, "x={x} v={v}");
    }
}

/// Tensor-level LQQ quantization: dequantized tensor always within
/// group-step error of the level-1 source.
#[test]
fn lqq_tensor_roundtrip() {
    let mut rng = Rng::new(0x9A17_000A);
    for _ in 0..CASES {
        let seed = rng.below(1000);
        let m = Mat::from_fn(4, 64, |r, c| {
            let h = seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((r * 64 + c) as u64)
                .wrapping_mul(0xBF58476D1CE4E5B9);
            (((h >> 32) % 239) as i16 - 119) as i8
        });
        let t = LqqTensor::quantize(&m, 64);
        let back = t.dequantize();
        for r in 0..4 {
            for k in 0..64 {
                let err = (i16::from(*back.get(r, k)) - i16::from(*m.get(r, k))).abs();
                assert!(err <= i16::from(t.group_at(r, k).s_u8 / 2 + 1).max(8));
            }
        }
    }
}
