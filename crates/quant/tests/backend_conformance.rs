//! Backend-conformance harness: every entry in the kernel-backend
//! registry must satisfy the shared [`PackedWeights`] /
//! [`TileDequant`] contract, and the differential guarantees the
//! backends advertise (`bit_exact` vs the SWAR reference, SQNR-bounded
//! otherwise) must hold on seeded ragged shapes and adversarial
//! inputs.

use lq_quant::backend::{registry, resolve, BackendId, PackedWeights};
use lq_quant::dequant::dequant_group_lqq;
use lq_quant::lqq::LqqGroup;
use lq_quant::lut::group_lut;
use lq_quant::mat::Mat;
use lq_quant::metrics::error_stats;
use lq_quant::packed::PackedLqqLinear;
use lq_quant::PackedLutLinear;
use lq_rng::Rng;

fn random_weights(rng: &mut Rng, n: usize, k: usize) -> Mat<f32> {
    Mat::from_fn(n, k, |_, _| rng.range_f32(-1.5, 1.5))
}

/// Reconstruct the FP32 matrix a packed representation encodes
/// (per-group dequant × level-1 channel scale).
fn reconstruct(w: &dyn PackedWeights) -> Mat<f32> {
    let (n, k, group) = (w.n(), w.k(), w.group());
    let mut out = Mat::from_fn(n, k, |_, _| 0.0f32);
    let mut buf = vec![0i8; group];
    for r in 0..n {
        let s = w.channel_scales()[r];
        for g in 0..k / group {
            w.dequant_row_group(r, g, &mut buf);
            for (i, &q) in buf.iter().enumerate() {
                out.set(r, g * group + i, f32::from(q) * s);
            }
        }
    }
    out
}

/// The registry is total and self-consistent: one entry per
/// [`BackendId`], labels round-trip through `parse`, and the cost
/// descriptors make physical sense.
#[test]
fn registry_is_total_and_consistent() {
    assert_eq!(registry().len(), BackendId::all().len());
    for (backend, id) in registry().iter().zip(BackendId::all()) {
        assert_eq!(backend.id(), id);
        assert_eq!(resolve(id).id(), id);
        assert_eq!(BackendId::parse(id.label()), Some(id));
        assert_eq!(id.to_string(), id.label());
        assert!(!backend.name().is_empty());
        let c = backend.cost();
        assert!(c.alpha >= 0.0, "{id}: negative dequant cost");
        assert!(c.weight_bytes_per_elem > 0.0, "{id}: free weights");
    }
    assert_eq!(BackendId::parse("nope"), None);
    // The paper's ordering: LQQ dequant is cheaper than the QoQ
    // baseline, and only the codebook backend gives up bit-exactness.
    assert!(resolve(BackendId::Lqq).cost().alpha < resolve(BackendId::Qoq).cost().alpha);
    for id in BackendId::all() {
        assert_eq!(
            resolve(id).cost().bit_exact,
            id != BackendId::Codebook,
            "{id}"
        );
    }
}

/// Every backend's pack answers the shared shape/metadata contract on
/// seeded ragged shapes.
#[test]
fn every_backend_packs_ragged_shapes() {
    let mut rng = Rng::new(0xC0_4F01);
    for round in 0..8 {
        // K constraints are backend-defined; a multiple of 32 with
        // group 32 satisfies all four (codebook needs k % 16 == 0).
        let n = rng.range_usize(1, 33);
        let k = 32 * rng.range_usize(1, 9);
        let wf = random_weights(&mut rng, n, k);
        for backend in registry() {
            let p = backend.pack(&wf, 32);
            let id = backend.id();
            assert_eq!(p.backend(), id, "round {round}");
            assert_eq!((p.n(), p.k(), p.group()), (n, k, 32), "{id} round {round}");
            assert_eq!(p.channel_scales().len(), n, "{id} round {round}");
            assert!(p.weight_bytes() > 0, "{id} round {round}");
            assert!(
                p.channel_scales()
                    .iter()
                    .all(|s| s.is_finite() && *s >= 0.0),
                "{id} round {round}: bad channel scale"
            );
        }
    }
}

/// The owned tile recipe must reproduce the borrowing dequant path
/// byte-for-byte for every backend, on every tile of a seeded shape —
/// this is what makes pool jobs interchangeable with serial kernels.
#[test]
fn tile_dequant_matches_row_dequant_for_every_backend() {
    let mut rng = Rng::new(0xC0_4F02);
    for _ in 0..4 {
        let n = rng.range_usize(3, 24);
        let k = 64 * rng.range_usize(1, 5);
        let wf = random_weights(&mut rng, n, k);
        for backend in registry() {
            let id = backend.id();
            let p = backend.pack(&wf, 64);
            let gpr = k / 64;
            // A ragged interior tile plus the full-matrix tile.
            let j0 = rng.range_usize(0, n - 1);
            let j1 = rng.range_usize(j0 + 1, n + 1);
            for (t0, t1) in [(j0, j1), (0, n)] {
                let tile = p.tile_dequant(t0, t1);
                assert_eq!((tile.k(), tile.group()), (k, 64), "{id}");
                assert_eq!(
                    tile.channel_scales(),
                    &p.channel_scales()[t0..t1],
                    "{id}: tile scales must be the rows' slice"
                );
                let words = p.rows_words(t0, t1);
                let mut via_tile = vec![0i8; 64];
                let mut via_row = vec![0i8; 64];
                for j in 0..t1 - t0 {
                    for g in 0..gpr {
                        tile.dequant_group(words, j, g, &mut via_tile);
                        p.dequant_row_group(t0 + j, g, &mut via_row);
                        assert_eq!(via_tile, via_row, "{id} row {} group {g}", t0 + j);
                    }
                }
                // The provided materialize (ExCP stage 2) agrees too.
                let (mat, mk, scales) = tile.materialize(words, t1 - t0);
                assert_eq!(mk, k, "{id}");
                assert_eq!(scales, p.channel_scales()[t0..t1].to_vec(), "{id}");
                for j in 0..t1 - t0 {
                    for g in 0..gpr {
                        p.dequant_row_group(t0 + j, g, &mut via_row);
                        let off = j * k + g * 64;
                        assert_eq!(&mat[off..off + 64], &via_row[..], "{id} row {j}");
                    }
                }
            }
        }
    }
}

/// Differential: the LUT backend is bit-exact against the LQQ SWAR
/// reference on seeded ragged N/K and every group size the packers
/// accept.
#[test]
fn lut_is_bit_exact_vs_swar_on_ragged_shapes() {
    let mut rng = Rng::new(0xC0_4F03);
    for group in [8usize, 16, 32, 64, 128, 256] {
        let n = rng.range_usize(1, 20);
        let k = group * rng.range_usize(1, 5);
        let wf = random_weights(&mut rng, n, k);
        let lut = PackedLutLinear::quantize(&wf, group);
        let lqq = PackedLqqLinear::quantize(&wf, group);
        assert_eq!(
            PackedWeights::channel_scales(&lut),
            PackedWeights::channel_scales(&lqq),
            "group {group}: same level-1 quantizer"
        );
        let mut via_lut = vec![0i8; group];
        let mut via_lqq = vec![0i8; group];
        for r in 0..n {
            for g in 0..k / group {
                PackedWeights::dequant_row_group(&lut, r, g, &mut via_lut);
                PackedWeights::dequant_row_group(&lqq, r, g, &mut via_lqq);
                assert_eq!(via_lut, via_lqq, "group {group} row {r} g {g}");
            }
        }
    }
}

/// Adversarial group-boundary patterns: constant rows, full-range
/// steps at group boundaries, and alternating-sign extremes all
/// quantize to the same bytes through the LUT and SWAR paths.
#[test]
fn lut_matches_swar_on_group_boundary_patterns() {
    let (n, k, group) = (6, 128, 32);
    let patterns: [fn(usize, usize) -> f32; 4] = [
        |_, _| 1.0,
        |_, c| if c % 32 == 0 { 1.0 } else { -1.0 },
        |_, c| if c % 32 < 16 { 2.0 } else { -2.0 },
        |r, c| if (r + c) % 2 == 0 { 3.0 } else { -3.0 },
    ];
    for (i, f) in patterns.iter().enumerate() {
        let wf = Mat::from_fn(n, k, f);
        let lut = PackedLutLinear::quantize(&wf, group);
        let lqq = PackedLqqLinear::quantize(&wf, group);
        let mut a = vec![0i8; group];
        let mut b = vec![0i8; group];
        for r in 0..n {
            for g in 0..k / group {
                PackedWeights::dequant_row_group(&lut, r, g, &mut a);
                PackedWeights::dequant_row_group(&lqq, r, g, &mut b);
                assert_eq!(a, b, "pattern {i} row {r} group {g}");
            }
        }
    }
}

/// The table agrees with the SWAR registers on every code whose
/// reconstruction stays in u8 (`c·s + a ≤ 255`) — a superset of the
/// codes the quantizer can emit, which are asserted overflow-free (the
/// paper's claim; past that bound the byte-lane `IMAD` would carry
/// into the neighbouring lane, so those codes are never packed). Also
/// pins the edges: code 0 reconstructs the group minimum exactly, and
/// the wrapped byte `i8::MIN` never appears among reachable codes.
#[test]
fn lut_matches_swar_on_every_reachable_code() {
    let mut rng = Rng::new(0xC0_4F04);
    for case in 0..512 {
        // Random groups plus the adversarial extremes: constant at the
        // protective floor/ceiling, and the full-range ±119 step.
        let group: Vec<i8> = match case {
            0 => vec![-119; 32],
            1 => vec![119; 32],
            2 => (0..32)
                .map(|i| if i % 2 == 0 { -119 } else { 119 })
                .collect(),
            _ => (0..32).map(|_| rng.range_i8(-119, 119)).collect(),
        };
        let (p, codes) = LqqGroup::quantize(&group);
        let (s, a) = (u16::from(p.s_u8), u16::from(p.offset_a()));
        for &c in &codes {
            assert!(
                u16::from(c) * s + a <= 255,
                "case {case}: emitted code {c} overflows (s={s}, a={a})"
            );
        }
        let table = group_lut(p);
        assert_eq!(table[0], p.min_i8, "case {case}: code 0 is the min");
        // Two interleave-packed words carrying codes 0..16 in element
        // order: byte b of a word holds element b (low nibble) and
        // element 4+b (high nibble).
        let words = [0x7362_5140u32, 0xFBEA_D9C8u32];
        let mut out = [0i8; 16];
        dequant_group_lqq(&words, p, &mut out);
        for (c, &got) in out.iter().enumerate() {
            if c as u16 * s + a <= 255 {
                assert_eq!(got, table[c], "case {case} code {c} (s={s}, a={a})");
                assert_ne!(got, i8::MIN, "case {case}: reachable wrapped byte");
            }
        }
    }
}

/// The codebook backend's contract is SQNR-bounded, not bit-exact:
/// its reconstruction must track the FP32 source within vector-
/// quantization error, and stay strictly lossier than the LQQ grid it
/// starts from.
#[test]
fn codebook_reconstruction_is_sqnr_bounded() {
    let mut rng = Rng::new(0xC0_4F05);
    let (n, k) = (24, 256);
    let wf = random_weights(&mut rng, n, k);
    let cb = resolve(BackendId::Codebook).pack(&wf, 64);
    let lqq = resolve(BackendId::Lqq).pack(&wf, 64);
    let e_cb = error_stats(&wf, &reconstruct(cb.as_ref()));
    let e_lqq = error_stats(&wf, &reconstruct(lqq.as_ref()));
    assert!(e_cb.sqnr_db > 8.0, "codebook SQNR {:.1} dB", e_cb.sqnr_db);
    assert!(e_cb.cosine > 0.9, "codebook cosine {:.4}", e_cb.cosine);
    assert!(
        e_lqq.sqnr_db > e_cb.sqnr_db,
        "vector quantization cannot beat the scalar grid it samples \
         ({:.1} dB vs {:.1} dB)",
        e_lqq.sqnr_db,
        e_cb.sqnr_db
    );
    // And the advertised memory trade is real: 2-bit-effective indices
    // pack smaller than any nibble backend.
    assert!(cb.weight_bytes() < lqq.weight_bytes());
}
