//! Quantization-error metrics for the accuracy harness.
//!
//! The paper evaluates perplexity and zero-shot accuracy offline and
//! reports only that "LQQ preserves accuracy" (detailed tables deferred
//! to a tech report). Without model checkpoints, the checkable claim is
//! the *mechanism*: LQQ's grid has the same step size as QoQ's on every
//! group, so switching QoQ → LQQ costs no representational fidelity.
//! These metrics quantify that on synthetic tensors.

use crate::mat::Mat;

/// Summary statistics of elementwise error between two tensors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Mean squared error.
    pub mse: f64,
    /// Signal-to-quantization-noise ratio in dB (10·log₁₀(sig/noise)).
    pub sqnr_db: f64,
    /// Maximum absolute error.
    pub max_abs: f64,
    /// Cosine similarity of the flattened tensors.
    pub cosine: f64,
}

/// Compare a reference f32 tensor to an approximation.
#[must_use]
pub fn error_stats(reference: &Mat<f32>, approx: &Mat<f32>) -> ErrorStats {
    assert_eq!(reference.rows(), approx.rows());
    assert_eq!(reference.cols(), approx.cols());
    let n = reference.len().max(1) as f64;
    let mut se = 0.0f64;
    let mut sig = 0.0f64;
    let mut max_abs = 0.0f64;
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&a, &b) in reference.as_slice().iter().zip(approx.as_slice().iter()) {
        let (a, b) = (f64::from(a), f64::from(b));
        let d = a - b;
        se += d * d;
        sig += a * a;
        max_abs = max_abs.max(d.abs());
        dot += a * b;
        na += a * a;
        nb += b * b;
    }
    let mse = se / n;
    let sqnr_db = if se == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (sig / se).log10()
    };
    let cosine = if na == 0.0 || nb == 0.0 {
        if na == nb {
            1.0
        } else {
            0.0
        }
    } else {
        dot / (na.sqrt() * nb.sqrt())
    };
    ErrorStats {
        mse,
        sqnr_db,
        max_abs,
        cosine,
    }
}

/// Same comparison for INT8 tensors (errors in integer steps).
#[must_use]
pub fn error_stats_i8(reference: &Mat<i8>, approx: &Mat<i8>) -> ErrorStats {
    let to_f = |m: &Mat<i8>| Mat::from_fn(m.rows(), m.cols(), |r, c| f32::from(*m.get(r, c)));
    error_stats(&to_f(reference), &to_f(approx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_tensors_have_zero_error() {
        let m = Mat::from_fn(4, 4, |r, c| (r + c) as f32);
        let s = error_stats(&m, &m);
        assert_eq!(s.mse, 0.0);
        assert_eq!(s.max_abs, 0.0);
        assert!(s.sqnr_db.is_infinite());
        assert!((s.cosine - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_error_values() {
        let a = Mat::from_vec(1, 4, vec![1.0f32, 2.0, 3.0, 4.0]);
        let b = Mat::from_vec(1, 4, vec![1.0f32, 2.0, 3.0, 5.0]);
        let s = error_stats(&a, &b);
        assert!((s.mse - 0.25).abs() < 1e-12);
        assert_eq!(s.max_abs, 1.0);
        // sig = 30, noise = 1 → 10·log10(30) ≈ 14.77 dB
        assert!((s.sqnr_db - 10.0 * 30f64.log10()).abs() < 1e-9);
    }

    #[test]
    fn cosine_detects_anticorrelation() {
        let a = Mat::from_vec(1, 3, vec![1.0f32, 2.0, 3.0]);
        let b = Mat::from_vec(1, 3, vec![-1.0f32, -2.0, -3.0]);
        let s = error_stats(&a, &b);
        assert!((s.cosine + 1.0).abs() < 1e-12);
    }

    #[test]
    fn i8_wrapper_counts_integer_steps() {
        let a = Mat::from_vec(1, 2, vec![10i8, -10]);
        let b = Mat::from_vec(1, 2, vec![12i8, -10]);
        let s = error_stats_i8(&a, &b);
        assert_eq!(s.max_abs, 2.0);
        assert!((s.mse - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lqq_and_qoq_errors_are_comparable() {
        // The headline mechanism check: on the same level-1 tensor, the
        // two second-level schemes have the same step and so nearly the
        // same error. LQQ must never be meaningfully worse.
        use crate::lqq::LqqTensor;
        use crate::qoq::QoqTensor;
        let m = Mat::from_fn(16, 256, |r, c| {
            ((((r * 997 + c * 131) % 239) as i16) - 119) as i8
        });
        let fl = |mm: &Mat<i8>| Mat::from_fn(mm.rows(), mm.cols(), |r, c| f32::from(*mm.get(r, c)));
        let lqq = LqqTensor::quantize(&m, 64).dequantize();
        let qoq = QoqTensor::quantize(&m, 64).dequantize();
        let e_lqq = error_stats(&fl(&m), &fl(&lqq));
        let e_qoq = error_stats(&fl(&m), &fl(&qoq));
        assert!(
            e_lqq.mse <= e_qoq.mse * 1.05 + 1e-9,
            "LQQ mse {} vs QoQ mse {}",
            e_lqq.mse,
            e_qoq.mse
        );
        assert!(e_lqq.cosine > 0.99);
    }
}
