//! IEEE binary16 ("half") codec for the FP16 and W4A16 baseline kernels.
//!
//! Weight storage in those baselines is 16-bit; compute happens in f32
//! (mirroring how tensor cores accumulate FP16 MMAs in higher
//! precision). Conversions implement full IEEE semantics: subnormals,
//! round-to-nearest-even, infinity overflow, NaN preservation.

/// A 16-bit IEEE binary16 value stored as raw bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct F16(pub u16);

impl F16 {
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7BFF);

    /// Convert from f32 with round-to-nearest-even.
    #[must_use]
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf / NaN: keep a mantissa bit for NaN.
            let m = if mant != 0 { 0x0200 } else { 0 };
            return F16(sign | 0x7C00 | m);
        }
        // Unbiased exponent.
        let e = exp - 127;
        if e > 15 {
            return F16(sign | 0x7C00); // overflow → ±inf
        }
        if e >= -14 {
            // Normal range: round 23-bit mantissa to 10 bits (RNE).
            let m10 = mant >> 13;
            let rem = mant & 0x1FFF;
            let mut out = sign | (((e + 15) as u16) << 10) | m10 as u16;
            if rem > 0x1000 || (rem == 0x1000 && (m10 & 1) == 1) {
                out = out.wrapping_add(1); // may carry into exp: correct (rounds up to next binade / inf)
            }
            return F16(out);
        }
        if e >= -25 {
            // Subnormal: shift the implicit 1 into the mantissa.
            let full = 0x0080_0000 | mant; // 24-bit significand
            let shift = (-14 - e + 13) as u32; // bits to drop
            let m10 = full >> shift;
            let rem = full & ((1u32 << shift) - 1);
            let half = 1u32 << (shift - 1);
            let mut out = sign | m10 as u16;
            if rem > half || (rem == half && (m10 & 1) == 1) {
                out = out.wrapping_add(1);
            }
            return F16(out);
        }
        F16(sign) // underflow → ±0
    }

    /// Convert to f32 exactly (binary16 ⊂ binary32).
    #[must_use]
    pub fn to_f32(self) -> f32 {
        let b = self.0;
        let sign = u32::from(b & 0x8000) << 16;
        let exp = (b >> 10) & 0x1F;
        let mant = u32::from(b & 0x03FF);
        if exp == 0 && mant != 0 {
            // Subnormal: mant × 2⁻²⁴, exact in f32.
            let v = mant as f32 * 2f32.powi(-24);
            return if sign != 0 { -v } else { v };
        }
        let bits = if exp == 0x1F {
            // Inf / NaN.
            sign | 0x7F80_0000 | (mant << 13)
        } else if exp == 0 {
            sign // ±0
        } else {
            sign | ((u32::from(exp) + 127 - 15) << 23) | (mant << 13)
        };
        f32::from_bits(bits)
    }
}

/// Convert an f32 slice to f16 bits (weight packing for 16-bit formats).
#[must_use]
pub fn encode_slice(xs: &[f32]) -> Vec<F16> {
    xs.iter().map(|&x| F16::from_f32(x)).collect()
}

/// Convert f16 bits back to f32.
#[must_use]
pub fn decode_slice(xs: &[F16]) -> Vec<f32> {
    xs.iter().map(|x| x.to_f32()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_constants() {
        assert_eq!(F16::from_f32(0.0).0, 0x0000);
        assert_eq!(F16::from_f32(-0.0).0, 0x8000);
        assert_eq!(F16::from_f32(1.0).0, 0x3C00);
        assert_eq!(F16::from_f32(-2.0).0, 0xC000);
        assert_eq!(F16::from_f32(65504.0).0, 0x7BFF);
        assert_eq!(F16::from_f32(1e6).0, 0x7C00); // overflow → inf
        assert_eq!(F16::from_f32(f32::INFINITY).0, 0x7C00);
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn decode_known_constants() {
        assert_eq!(F16(0x3C00).to_f32(), 1.0);
        assert_eq!(F16(0xC000).to_f32(), -2.0);
        assert_eq!(F16(0x7BFF).to_f32(), 65504.0);
        assert_eq!(F16(0x7C00).to_f32(), f32::INFINITY);
        assert_eq!(F16(0x0001).to_f32(), 2f32.powi(-24)); // min subnormal
        assert_eq!(F16(0x0400).to_f32(), 2f32.powi(-14)); // min normal
    }

    #[test]
    fn roundtrip_every_f16_bit_pattern() {
        // f16 → f32 → f16 must be the identity on non-NaN patterns.
        for b in 0..=u16::MAX {
            let h = F16(b);
            let f = h.to_f32();
            if f.is_nan() {
                assert!(F16::from_f32(f).to_f32().is_nan());
                continue;
            }
            assert_eq!(F16::from_f32(f).0, b, "bits {b:#06x} value {f}");
        }
    }

    #[test]
    fn rne_rounding() {
        // 1 + 2^-11 is exactly between 1.0 and 1+2^-10 → ties to even (1.0).
        let tie = 1.0 + 2f32.powi(-11);
        assert_eq!(F16::from_f32(tie).0, 0x3C00);
        // Slightly above the tie rounds up.
        assert_eq!(F16::from_f32(tie + 1e-6).0, 0x3C01);
    }

    #[test]
    fn relative_error_bound_for_normals() {
        let mut x = 6.2e-5f32;
        while x < 6.0e4 {
            let v = F16::from_f32(x).to_f32();
            assert!(((v - x) / x).abs() <= 2f32.powi(-11) + 1e-7, "x={x} v={v}");
            x *= 1.618;
        }
    }

    #[test]
    fn slice_codecs_roundtrip() {
        let xs = vec![0.5f32, -1.25, 3.75, 1000.0];
        assert_eq!(decode_slice(&encode_slice(&xs)), xs);
    }
}
