//! Minimal row-major matrix container.
//!
//! The kernels in `lq-core` operate on raw slices for speed; `Mat` is the
//! owning container that carries shape information across crate
//! boundaries and provides checked access for tests. Row-major: element
//! `(r, c)` lives at index `r * cols + c`.

use std::fmt;

/// Dense row-major matrix.
#[derive(Clone, PartialEq, Eq)]
pub struct Mat<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Mat<T> {
    /// Zero-filled (default-filled) matrix of the given shape.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }
}

impl<T> Mat<T> {
    /// Wrap an existing buffer. Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Build from a per-element generator `f(row, col)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the backing row-major slice.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the backing row-major slice.
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the backing buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Borrow row `r` as a slice.
    #[must_use]
    pub fn row(&self, r: usize) -> &[T] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[must_use]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Checked element access.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> &T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }

    /// Checked mutable element access.
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Iterate rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[T]> {
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }
}

impl<T: Copy> Mat<T> {
    /// Transposed copy (`self[r][c]` → `out[c][r]`).
    #[must_use]
    pub fn transposed(&self) -> Mat<T> {
        let mut out = Vec::with_capacity(self.data.len());
        for c in 0..self.cols {
            for r in 0..self.rows {
                out.push(self.data[r * self.cols + c]);
            }
        }
        Mat::from_vec(self.cols, self.rows, out)
    }
}

impl Mat<f32> {
    /// Gaussian-random matrix (Box–Muller over a caller-supplied RNG
    /// closure returning uniform `[0,1)` samples), used by tests and the
    /// synthetic workload generators.
    #[must_use]
    pub fn gaussian(rows: usize, cols: usize, std: f32, mut uniform: impl FnMut() -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        while data.len() < rows * cols {
            let u1 = uniform().max(1e-12);
            let u2 = uniform();
            let r = (-2.0 * u1.ln()).sqrt();
            let (s, c) = (2.0 * std::f32::consts::PI * u2).sin_cos();
            data.push(r * c * std);
            if data.len() < rows * cols {
                data.push(r * s * std);
            }
        }
        Self { rows, cols, data }
    }

    /// Max absolute value per column (used by SmoothQuant calibration).
    #[must_use]
    pub fn col_abs_max(&self) -> Vec<f32> {
        let mut m = vec![0.0f32; self.cols];
        for row in self.rows_iter() {
            for (c, &v) in row.iter().enumerate() {
                m[c] = m[c].max(v.abs());
            }
        }
        m
    }
}

impl<T: fmt::Debug> fmt::Debug for Mat<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mat<{}x{}>", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            for r in 0..self.rows {
                write!(
                    f,
                    "\n  {:?}",
                    &self.data[r * self.cols..(r + 1) * self.cols]
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_access() {
        let mut m: Mat<i32> = Mat::zeros(3, 4);
        assert_eq!((m.rows(), m.cols(), m.len()), (3, 4, 12));
        assert!(!m.is_empty());
        m.set(2, 3, 7);
        assert_eq!(*m.get(2, 3), 7);
        assert_eq!(m.row(2), &[0, 0, 0, 7]);
    }

    #[test]
    fn from_fn_row_major_order() {
        let m = Mat::from_fn(2, 3, |r, c| (r * 10 + c) as i32);
        assert_eq!(m.as_slice(), &[0, 1, 2, 10, 11, 12]);
        assert_eq!(m.rows_iter().count(), 2);
    }

    #[test]
    fn transpose_involution() {
        let m = Mat::from_fn(3, 5, |r, c| (r * 5 + c) as i32);
        let t = m.transposed();
        assert_eq!((t.rows(), t.cols()), (5, 3));
        assert_eq!(*t.get(4, 2), *m.get(2, 4));
        assert_eq!(t.transposed(), m);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_shape_mismatch_panics() {
        let _ = Mat::from_vec(2, 3, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        let m: Mat<u8> = Mat::zeros(2, 2);
        let _ = m.row(2);
    }

    #[test]
    fn gaussian_has_roughly_right_moments() {
        let mut state = 0x12345678u64;
        let mut uni = move || {
            // xorshift64* for a deterministic test
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 40) as f32 / (1u64 << 24) as f32
        };
        let m = Mat::gaussian(64, 64, 2.0, &mut uni);
        let n = m.len() as f32;
        let mean: f32 = m.as_slice().iter().sum::<f32>() / n;
        let var: f32 = m
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / n;
        assert!(mean.abs() < 0.15, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.2, "std {}", var.sqrt());
    }

    #[test]
    fn col_abs_max_finds_outliers() {
        let mut m = Mat::zeros(4, 3);
        m.set(1, 0, -5.0);
        m.set(3, 2, 2.5);
        assert_eq!(m.col_abs_max(), vec![5.0, 0.0, 2.5]);
    }
}
