//! 4-bit group-wise KV-cache quantization — the QServe-side baseline
//! (W4A8**KV4**) that the paper's LiquidServe deliberately does *not*
//! adopt (it uses INT8 KV, Section 6).
//!
//! KV4 halves cache bytes, which is why QServe fits larger batches on
//! LLaMA-30B/13B in Table 1 — but every attention step must then
//! dequantize the cache on CUDA cores, and that cost (modelled as
//! `dequant_alpha` in `lq-serving::attention`) is what erases the
//! bandwidth saving on Hopper. This module provides the actual codec so
//! the trade-off is executable, not just asserted: group-wise
//! asymmetric 4-bit over the token's channels.

/// Parameters of one KV4 group (asymmetric, f32 scale — KV values are
/// floats, unlike the integer second-level weight path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Kv4Group {
    /// Scale (step size).
    pub scale: f32,
    /// Minimum value (zero-point anchor).
    pub min: f32,
}

impl Kv4Group {
    /// Quantize one group of KV values to 4-bit codes.
    #[must_use]
    pub fn quantize(group: &[f32]) -> (Self, Vec<u8>) {
        assert!(!group.is_empty(), "empty KV4 group");
        let min = group.iter().copied().fold(f32::INFINITY, f32::min);
        let max = group.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let scale = if max > min { (max - min) / 15.0 } else { 1.0 };
        let codes = group
            .iter()
            .map(|&v| (((v - min) / scale).round() as i32).clamp(0, 15) as u8)
            .collect();
        (Self { scale, min }, codes)
    }

    /// Dequantize one code.
    #[inline]
    #[must_use]
    pub fn dequant(self, code: u8) -> f32 {
        debug_assert!(code < 16);
        f32::from(code) * self.scale + self.min
    }
}

/// A KV vector quantized to 4-bit with groups of `group` channels.
#[derive(Debug, Clone)]
pub struct Kv4Vector {
    group: usize,
    /// Packed codes, two per byte (low nibble first).
    pub packed: Vec<u8>,
    /// Per-group parameters.
    pub groups: Vec<Kv4Group>,
    len: usize,
}

impl Kv4Vector {
    /// Quantize a KV vector. `kv.len()` must be a multiple of `group`,
    /// and `group` must be even.
    #[must_use]
    pub fn quantize(kv: &[f32], group: usize) -> Self {
        assert!(
            group >= 2 && group.is_multiple_of(2),
            "group must be even and >= 2"
        );
        assert_eq!(kv.len() % group, 0, "length not a multiple of group");
        let mut packed = Vec::with_capacity(kv.len() / 2);
        let mut groups = Vec::with_capacity(kv.len() / group);
        for g in kv.chunks_exact(group) {
            let (params, codes) = Kv4Group::quantize(g);
            groups.push(params);
            for pair in codes.chunks_exact(2) {
                packed.push(pair[0] | (pair[1] << 4));
            }
        }
        Self {
            group,
            packed,
            groups,
            len: kv.len(),
        }
    }

    /// Dequantize the whole vector.
    #[must_use]
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.len);
        for (i, &byte) in self.packed.iter().enumerate() {
            let params = self.groups[(2 * i) / self.group];
            out.push(params.dequant(byte & 0xF));
            out.push(params.dequant(byte >> 4));
        }
        out
    }

    /// Stored bytes (codes + params at 8 bytes per group).
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.packed.len() + self.groups.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_bounded_by_half_step() {
        let kv: Vec<f32> = (0..128).map(|i| ((i as f32) * 0.37).sin() * 3.0).collect();
        let q = Kv4Vector::quantize(&kv, 64);
        let back = q.dequantize();
        for (g, chunk) in kv.chunks_exact(64).enumerate() {
            let step = q.groups[g].scale;
            for (i, &v) in chunk.iter().enumerate() {
                let err = (back[g * 64 + i] - v).abs();
                assert!(err <= step / 2.0 + 1e-6, "err {err} step {step}");
            }
        }
    }

    #[test]
    fn constant_group_is_exact() {
        let kv = vec![2.5f32; 32];
        let q = Kv4Vector::quantize(&kv, 32);
        assert_eq!(q.dequantize(), kv);
    }

    #[test]
    fn extremes_are_representable() {
        let mut kv = vec![0.0f32; 16];
        kv[0] = -7.0;
        kv[15] = 9.0;
        let q = Kv4Vector::quantize(&kv, 16);
        let back = q.dequantize();
        assert!((back[0] + 7.0).abs() < 1e-6);
        assert!((back[15] - 9.0).abs() < 1e-6);
    }

    #[test]
    fn kv4_halves_int8_storage() {
        // 256 channels: INT8 cache = 256 B (+ scales); KV4 ≈ 128 B + params.
        let kv: Vec<f32> = (0..256).map(|i| (i as f32 * 0.1).cos()).collect();
        let q = Kv4Vector::quantize(&kv, 64);
        assert_eq!(q.packed.len(), 128);
        assert!(q.bytes() < 256);
    }

    #[test]
    fn kv4_error_exceeds_int8_error() {
        // The accuracy side of the KV4-vs-INT8 trade: same data, the
        // 4-bit cache must carry more error than an 8-bit one.
        let kv: Vec<f32> = (0..128)
            .map(|i| ((i * i) as f32 * 0.013).sin() * 4.0)
            .collect();
        let q4 = Kv4Vector::quantize(&kv, 64);
        let b4 = q4.dequantize();
        let e4: f32 = kv
            .iter()
            .zip(b4.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        // INT8 per-channel static with exact absmax calibration.
        let e8: f32 = kv
            .iter()
            .map(|&v| {
                let s = 4.0 / 127.0;
                let back = (v / s).round().clamp(-127.0, 127.0) * s;
                (v - back) * (v - back)
            })
            .sum();
        assert!(e4 > 4.0 * e8, "e4 {e4} vs e8 {e8}");
    }

    #[test]
    #[should_panic(expected = "length not a multiple of group")]
    fn bad_length_panics() {
        let _ = Kv4Vector::quantize(&[0.0; 30], 64);
    }
}
