//! # lq-quant — LiquidQuant: the W4A8 quantization algorithm
//!
//! Implements the full quantization stack of the LiquidGEMM paper
//! (Section 4 and Section 6):
//!
//! * [`mat`] — minimal row-major matrix container shared by the kernels.
//! * [`level1`] — first-level **per-channel symmetric INT8** quantization
//!   with the *protective quantization range* `[-119, 119]` inherited
//!   from QServe, which is what makes the second-level scale satisfy
//!   `s_u8 ≤ 16`.
//! * [`lqq`] — second-level **LiquidQuant** (LQQ): shift `Q_i8` into the
//!   unsigned domain, per-group quantize to UINT4 (Eq. 7), and the
//!   overflow-free *sweet dequantization* `(Q_u4·s + a) ⊕ 0x80` (Eq. 12)
//!   executed as one `IMAD` + one `XOR` per four elements.
//! * [`qoq`] — the QServe/QoQ baseline second level (zero-point grid,
//!   subtraction-after-multiplication) whose byte-wise subtract must be
//!   emulated (`vsub4` lowering), reproducing the paper's cost gap.
//! * [`smooth`] — SmoothQuant activation-outlier migration with the
//!   OutlierSuppression+-style grid search used for offline calibration.
//! * [`act`] — per-token dynamic INT8 activation quantization.
//! * [`fp8`] / [`fp16`] — E4M3 and IEEE binary16 codecs for the FP8 and
//!   W4A16/FP16 baseline kernels.
//! * [`w4f16`] — the AWQ-style UINT4 → FP16 magic-number conversion
//!   (the TRT-W4A16 baseline's dequantization), instruction-audited.
//! * [`kv4`] — QServe's 4-bit group-wise KV-cache codec (the
//!   W4A8**KV4** baseline's cache format), for the executable
//!   KV4-vs-INT8 trade-off.
//! * [`weights`] — the end-to-end two-level pipeline producing a
//!   [`weights::QuantizedLinear`] ready for the GEMM kernels.
//! * [`metrics`] — quantization-error metrics (MSE, SQNR, max-abs,
//!   cosine) used by the accuracy harness.
//! * [`backend`] — the pluggable kernel-backend layer: the
//!   [`backend::KernelBackend`] / [`backend::PackedWeights`] /
//!   [`backend::TileDequant`] traits and the [`backend::BackendId`]-keyed
//!   registry every kernel dispatches through.
//! * [`dequant`] — the uncounted hot-loop SWAR group dequantization the
//!   LQQ/QoQ backends and kernels share.
//! * [`packed`] — dual-MMA-packed weight containers for the LQQ and QoQ
//!   backends.
//! * [`lut`] — the LUT-GEMM-style backend: per-group 16-entry INT8
//!   dequant tables indexed by the 4-bit codes (bit-exact vs LQQ).
//! * [`codebook`] — the CodeGEMM-style backend: a shared codebook of
//!   INT8 sub-vectors indexed by 8-bit codes (SQNR-bounded).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod act;
pub mod backend;
pub mod codebook;
pub mod dequant;
pub mod fp16;
pub mod fp8;
pub mod kv4;
pub mod level1;
pub mod lqq;
pub mod lut;
pub mod mat;
pub mod metrics;
pub mod packed;
pub mod qoq;
pub mod smooth;
pub mod w4f16;
pub mod weights;

pub use act::{quantize_token, QuantizedActivations};
pub use backend::{
    registry, resolve, BackendCost, BackendId, KernelBackend, PackedWeights, TileDequant,
};
pub use codebook::PackedCodebookLinear;
pub use level1::{quantize_per_channel_i8, ChannelScale, PROTECTIVE_MAX};
pub use lqq::{LqqGroup, LqqTensor};
pub use lut::PackedLutLinear;
pub use mat::Mat;
pub use packed::{PackedLqqLinear, PackedQoqLinear};
pub use qoq::QoqGroup;
pub use weights::{QuantScheme, QuantizedLinear};
