//! The pluggable kernel-backend layer: every W4A8 dequant scheme is a
//! [`KernelBackend`] behind a [`BackendId`]-keyed registry, and its
//! packed weights answer a shared object-safe [`PackedWeights`]
//! contract the kernels dispatch through.
//!
//! Before this layer the dequant algorithm was a closed enum
//! (`PackedW4A8 { Lqq, Qoq }`) baked into every pipeline driver, so a
//! new quant scheme meant touching the enum, the serial kernel, all
//! three pool drivers, and the benches. Now a scheme ships three
//! things, all in this crate:
//!
//! 1. a packed-weight container implementing [`PackedWeights`]
//!    (streaming word access + per-row-group dequant),
//! 2. a [`TileDequant`] object (the owned, `Send` recipe a pool job
//!    carries so it needs no borrow of the weight matrix), and
//! 3. a unit-struct [`KernelBackend`] registered in [`registry`]
//!    (offline pack entry point + [`BackendCost`] descriptor for the
//!    `lq-sim` cost model).
//!
//! The kernels themselves are backend-agnostic: any implementation
//! that fills the same INT8 tile bytes is bit-identical to the serial
//! reference, because accumulation is exact i32 and the epilogue order
//! is fixed. Word-stream geometry is backend-defined — `rows_words`
//! only promises that the slice for rows `[r0, r1)` is what the
//! matching [`TileDequant`] expects, so a backend with a different
//! words-per-row (e.g. the codebook's four-index words) flows through
//! the staging ring unchanged.
//!
//! Object safety: both traits avoid generics and `Self`-returning
//! methods; [`TileDequant::materialize`] is a provided method (the
//! ExCP "write the tile back to SMEM" stage) so backends override it
//! only if they can materialise faster than group-by-group.

use std::fmt;
use std::sync::Arc;

use crate::codebook::CodebookGemmBackend;
use crate::dequant::{dequant_group_lqq, dequant_group_qoq};
use crate::lqq::LqqGroup;
use crate::lut::LutDequantBackend;
use crate::mat::Mat;
use crate::packed::{PackedLqqLinear, PackedQoqLinear};
use crate::qoq::QoqGroup;

/// Largest supported quantization group (elements along K). Kernels
/// size stack buffers with this, so packers must reject bigger groups.
pub const MAX_GROUP: usize = 256;

/// Identifies a registered kernel backend — the runtime selection key
/// for `LiquidGemm::builder().backend(...)` and the telemetry label on
/// per-backend counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendId {
    /// LiquidQuant SWAR fast path (IMAD + XOR, the paper's kernel).
    Lqq,
    /// QServe/QoQ baseline (multiply + emulated `vsub4`).
    Qoq,
    /// LUT-GEMM-style per-group 16-entry lookup tables (Park et al.).
    Lut,
    /// CodeGEMM-style shared codebook of i8 sub-vectors.
    Codebook,
}

impl BackendId {
    /// Stable lowercase label — the `backend` telemetry label value and
    /// the bench table key.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            BackendId::Lqq => "lqq",
            BackendId::Qoq => "qoq",
            BackendId::Lut => "lut",
            BackendId::Codebook => "codebook",
        }
    }

    /// Every registered id, in registry order.
    #[must_use]
    pub const fn all() -> [BackendId; 4] {
        [
            BackendId::Lqq,
            BackendId::Qoq,
            BackendId::Lut,
            BackendId::Codebook,
        ]
    }

    /// Inverse of [`BackendId::label`] (CLI/bench argument parsing).
    #[must_use]
    pub fn parse(s: &str) -> Option<BackendId> {
        BackendId::all().into_iter().find(|id| id.label() == s)
    }
}

impl fmt::Display for BackendId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Cost-model descriptor a backend hands to `lq-sim`: enough to build
/// the simulator's per-precision configuration (`PrecisionCfg`) so one
/// sweep prices all registered backends on the same shapes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendCost {
    /// Dequant ALU instructions per weight element (the paper's α).
    pub alpha: f64,
    /// Weight-memory bytes per element, metadata amortised in (nominal
    /// at group 64).
    pub weight_bytes_per_elem: f64,
    /// Whether dequant issues on different units than the MMA and can
    /// hide behind it (the ImFP overlap assumption).
    pub overlap_dq: bool,
    /// Whether the backend reproduces the serial SWAR reference
    /// bit-exactly (codebook backends are SQNR-bounded instead).
    pub bit_exact: bool,
}

/// Owned dequant recipe for one tile of rows: everything a pool worker
/// needs to turn the staged word stream back into INT8, with no borrow
/// of the weight matrix. `Send` so it can cross the injector queue.
pub trait TileDequant: Send {
    /// Reduction dim (elements per row).
    fn k(&self) -> usize;

    /// Quantization group size (elements).
    fn group(&self) -> usize;

    /// Level-1 channel scales of the tile's rows (length = tile rows).
    fn channel_scales(&self) -> &[f32];

    /// Dequantize group `g` of tile-relative row `j_rel` from the
    /// staged `words` (the slice `PackedWeights::rows_words` produced
    /// for this tile) into `out` (length = group size).
    fn dequant_group(&self, words: &[u32], j_rel: usize, g: usize, out: &mut [i8]);

    /// ExCP stage 2: fully materialise the INT8 tile — the "write back
    /// to SMEM" the paper identifies as ExCP's overhead. Returns the
    /// tile, `k`, and the channel scales the MMA stage needs.
    fn materialize(&self, words: &[u32], rows: usize) -> (Vec<i8>, usize, Vec<f32>) {
        let mut buf = [0i8; MAX_GROUP];
        let (k, group) = (self.k(), self.group());
        let mut tile = vec![0i8; rows * k];
        for j in 0..rows {
            for g in 0..k / group {
                self.dequant_group(words, j, g, &mut buf[..group]);
                let dst = j * k + g * group;
                tile[dst..dst + group].copy_from_slice(&buf[..group]);
            }
        }
        (tile, k, self.channel_scales().to_vec())
    }
}

/// The shared contract of packed W4A8 weights: shape and scale
/// metadata, the streaming word view the Load stage copies, and the
/// two dequant entry points (borrowing for serial/tiled kernels, owned
/// [`TileDequant`] for pool jobs).
pub trait PackedWeights: Send + Sync {
    /// Which backend packed these weights.
    fn backend(&self) -> BackendId;

    /// Output channels.
    fn n(&self) -> usize;

    /// Reduction dim.
    fn k(&self) -> usize;

    /// Quantization group size along K.
    fn group(&self) -> usize;

    /// Level-1 per-channel scales (length `n`).
    fn channel_scales(&self) -> &[f32];

    /// Packed words of rows `[r0, r1)` as one contiguous slice — the
    /// tile the Load stage copies into a staging buffer. The per-row
    /// word count is backend-defined; only the matching
    /// [`TileDequant`] needs to understand the stream.
    fn rows_words(&self, r0: usize, r1: usize) -> &[u32];

    /// Dequantize group `g` of absolute row `row` into `out` (length =
    /// group size) — the borrowing path the serial and tiled kernels
    /// stream through.
    fn dequant_row_group(&self, row: usize, g: usize, out: &mut [i8]);

    /// Owned dequant recipe for rows `[j0, j1)` (group params and
    /// channel scales copied out) for pool jobs.
    fn tile_dequant(&self, j0: usize, j1: usize) -> Box<dyn TileDequant>;

    /// Weight bytes (payload + metadata) — the serving simulator's
    /// memory model.
    fn weight_bytes(&self) -> usize;
}

/// A registered quantization + dequantization scheme: the offline pack
/// entry point plus the descriptors runtime and simulator need.
/// Object-safe; implementations are stateless unit structs living in
/// [`registry`] for the life of the program.
pub trait KernelBackend: Send + Sync {
    /// Registry key.
    fn id(&self) -> BackendId;

    /// Human-readable name for tables and docs.
    fn name(&self) -> &'static str;

    /// Cost-model descriptor for `lq-sim`.
    fn cost(&self) -> BackendCost;

    /// Quantize + pack FP32 weights (`N×K`, group size along K) into
    /// this backend's kernel-ready container.
    fn pack(&self, w: &Mat<f32>, group: usize) -> Arc<dyn PackedWeights>;
}

/// The LiquidQuant backend (the paper's kernel).
pub struct LqqBackend;

impl KernelBackend for LqqBackend {
    fn id(&self) -> BackendId {
        BackendId::Lqq
    }

    fn name(&self) -> &'static str {
        "LiquidQuant SWAR (IMAD+XOR)"
    }

    fn cost(&self) -> BackendCost {
        BackendCost {
            // 7 ALU instructions per 8 elements + per-group overhead.
            alpha: 7.0 / 8.0 + 0.25,
            weight_bytes_per_elem: 0.5 + 2.0 / 64.0,
            overlap_dq: true,
            bit_exact: true,
        }
    }

    fn pack(&self, w: &Mat<f32>, group: usize) -> Arc<dyn PackedWeights> {
        Arc::new(PackedLqqLinear::quantize(w, group))
    }
}

/// The QServe/QoQ baseline backend.
pub struct QoqBackend;

impl KernelBackend for QoqBackend {
    fn id(&self) -> BackendId {
        BackendId::Qoq
    }

    fn name(&self) -> &'static str {
        "QoQ baseline (mul + emulated vsub4)"
    }

    fn cost(&self) -> BackendCost {
        BackendCost {
            // 19 instructions per 8 elements + zero-point handling.
            alpha: 19.0 / 8.0 + 1.5,
            weight_bytes_per_elem: 0.5 + 2.0 / 64.0,
            overlap_dq: false,
            bit_exact: true,
        }
    }

    fn pack(&self, w: &Mat<f32>, group: usize) -> Arc<dyn PackedWeights> {
        Arc::new(PackedQoqLinear::quantize(w, group))
    }
}

/// The global backend registry, in [`BackendId::all`] order. Entries
/// are `'static` unit structs, so a `&'static dyn KernelBackend` can be
/// stored anywhere without lifetime plumbing.
static REGISTRY: [&dyn KernelBackend; 4] = [
    &LqqBackend,
    &QoqBackend,
    &LutDequantBackend,
    &CodebookGemmBackend,
];

/// Every registered backend.
#[must_use]
pub fn registry() -> &'static [&'static dyn KernelBackend] {
    &REGISTRY
}

/// Look up a backend by id (total: every [`BackendId`] is registered).
#[must_use]
pub fn resolve(id: BackendId) -> &'static dyn KernelBackend {
    REGISTRY
        .iter()
        .copied()
        .find(|b| b.id() == id)
        .expect("every BackendId has a registry entry")
}

/// Owned LQQ tile recipe (group params + channel scales copied out).
struct LqqTile {
    k: usize,
    group: usize,
    params: Vec<LqqGroup>,
    channel_scales: Vec<f32>,
}

impl TileDequant for LqqTile {
    fn k(&self) -> usize {
        self.k
    }

    fn group(&self) -> usize {
        self.group
    }

    fn channel_scales(&self) -> &[f32] {
        &self.channel_scales
    }

    fn dequant_group(&self, words: &[u32], j_rel: usize, g: usize, out: &mut [i8]) {
        let wpr = self.k / 8;
        let wpg = self.group / 8;
        let off = j_rel * wpr + g * wpg;
        let gpr = self.k / self.group;
        dequant_group_lqq(&words[off..off + wpg], self.params[j_rel * gpr + g], out);
    }
}

/// Owned QoQ tile recipe.
struct QoqTile {
    k: usize,
    group: usize,
    params: Vec<QoqGroup>,
    channel_scales: Vec<f32>,
}

impl TileDequant for QoqTile {
    fn k(&self) -> usize {
        self.k
    }

    fn group(&self) -> usize {
        self.group
    }

    fn channel_scales(&self) -> &[f32] {
        &self.channel_scales
    }

    fn dequant_group(&self, words: &[u32], j_rel: usize, g: usize, out: &mut [i8]) {
        let wpr = self.k / 8;
        let wpg = self.group / 8;
        let off = j_rel * wpr + g * wpg;
        let gpr = self.k / self.group;
        dequant_group_qoq(&words[off..off + wpg], self.params[j_rel * gpr + g], out);
    }
}

impl PackedWeights for PackedLqqLinear {
    fn backend(&self) -> BackendId {
        BackendId::Lqq
    }

    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn group(&self) -> usize {
        self.group
    }

    fn channel_scales(&self) -> &[f32] {
        &self.channel_scales
    }

    fn rows_words(&self, r0: usize, r1: usize) -> &[u32] {
        self.words.rows_words(r0, r1)
    }

    fn dequant_row_group(&self, row: usize, g: usize, out: &mut [i8]) {
        dequant_group_lqq(self.group_words(row, g), self.group_params(row, g), out);
    }

    fn tile_dequant(&self, j0: usize, j1: usize) -> Box<dyn TileDequant> {
        let gpr = self.groups_per_row();
        Box::new(LqqTile {
            k: self.k,
            group: self.group,
            params: (j0..j1)
                .flat_map(|j| (0..gpr).map(move |g| self.group_params(j, g)))
                .collect(),
            channel_scales: self.channel_scales[j0..j1].to_vec(),
        })
    }

    fn weight_bytes(&self) -> usize {
        PackedLqqLinear::weight_bytes(self)
    }
}

impl PackedWeights for PackedQoqLinear {
    fn backend(&self) -> BackendId {
        BackendId::Qoq
    }

    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn group(&self) -> usize {
        self.group
    }

    fn channel_scales(&self) -> &[f32] {
        &self.channel_scales
    }

    fn rows_words(&self, r0: usize, r1: usize) -> &[u32] {
        self.words.rows_words(r0, r1)
    }

    fn dequant_row_group(&self, row: usize, g: usize, out: &mut [i8]) {
        dequant_group_qoq(self.group_words(row, g), self.group_params(row, g), out);
    }

    fn tile_dequant(&self, j0: usize, j1: usize) -> Box<dyn TileDequant> {
        let gpr = self.groups_per_row();
        Box::new(QoqTile {
            k: self.k,
            group: self.group,
            params: (j0..j1)
                .flat_map(|j| (0..gpr).map(move |g| self.group_params(j, g)))
                .collect(),
            channel_scales: self.channel_scales[j0..j1].to_vec(),
        })
    }

    fn weight_bytes(&self) -> usize {
        PackedQoqLinear::weight_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_id_in_order() {
        let ids: Vec<BackendId> = registry().iter().map(|b| b.id()).collect();
        assert_eq!(ids, BackendId::all());
        for id in BackendId::all() {
            assert_eq!(resolve(id).id(), id);
        }
    }

    #[test]
    fn labels_are_stable_and_parse_back() {
        for id in BackendId::all() {
            assert_eq!(BackendId::parse(id.label()), Some(id));
            assert_eq!(id.to_string(), id.label());
        }
        assert_eq!(BackendId::parse("nope"), None);
    }

    #[test]
    fn tile_dequant_matches_row_dequant() {
        let w = Mat::from_fn(12, 128, |r, c| ((r * 128 + c) as f32 * 0.13).sin());
        for id in BackendId::all() {
            let p = resolve(id).pack(&w, 64);
            let (j0, j1) = (3, 9);
            let tile = p.tile_dequant(j0, j1);
            let words = p.rows_words(j0, j1).to_vec();
            let group = p.group();
            let mut via_tile = vec![0i8; group];
            let mut via_row = vec![0i8; group];
            for j in j0..j1 {
                for g in 0..p.k() / group {
                    tile.dequant_group(&words, j - j0, g, &mut via_tile);
                    p.dequant_row_group(j, g, &mut via_row);
                    assert_eq!(via_tile, via_row, "{id} row {j} group {g}");
                }
            }
        }
    }

    #[test]
    fn costs_rank_lqq_cheapest_swar() {
        let lqq = resolve(BackendId::Lqq).cost();
        let qoq = resolve(BackendId::Qoq).cost();
        assert!(lqq.alpha < qoq.alpha);
        assert!(lqq.bit_exact && qoq.bit_exact);
    }
}
