//! LUT-GEMM-style dequantization backend (Park et al., "LUT-GEMM"):
//! instead of arithmetic reconstruction, each quantization group
//! carries a 16-entry INT8 lookup table built offline from its
//! scale/offset, and the kernel dequantizes by indexing the table with
//! the 4-bit codes.
//!
//! The codes and group parameters are exactly LiquidQuant's
//! ([`crate::lqq`]): the table entry for code `c` is the same
//! `(c·s + a) ⊕ 0x80` value the SWAR path computes, evaluated once per
//! group at pack time instead of once per element at kernel time. On
//! codes that arise from quantization the sweet path equals the scalar
//! reference, so this backend is **bit-exact** against the LQQ SWAR
//! kernels — asserted across the whole differential harness. The
//! trade: ~0.25 extra bytes/element of table metadata (group 64) and
//! scalar gathers in place of SWAR arithmetic, in exchange for a
//! dequant that needs no ALU multiply at all — the reason LUT-GEMM
//! targets weight-only quantization on memory-bound decode.

use std::sync::Arc;

use lq_layout::dual_mma::DualMmaWeights;

use crate::backend::{
    BackendCost, BackendId, KernelBackend, PackedWeights, TileDequant, MAX_GROUP,
};
use crate::lqq::{LqqGroup, LqqTensor};
use crate::mat::Mat;
use crate::weights::{Level2, QuantScheme, QuantizedLinear};

/// Build the 16-entry INT8 table for one LQQ group: entry `c` is the
/// sweet-path reconstruction `((c·s + a) mod 256) ⊕ 0x80`. For every
/// code the quantizer can emit this equals
/// [`LqqGroup::dequant_scalar`]; codes outside the group's occupied
/// range get the same wrapped value the SWAR registers would hold,
/// keeping table and SWAR output identical byte-for-byte.
#[must_use]
pub fn group_lut(p: LqqGroup) -> [i8; 16] {
    let s = u16::from(p.s_u8);
    let a = u16::from(p.offset_a());
    std::array::from_fn(|c| (((c as u16 * s + a) as u8) ^ 0x80) as i8)
}

/// Dequantize interleave-packed words through a group's table: lane
/// `b` of the `lo` nibbles is element `b`, of the `hi` nibbles element
/// `4+b` (same consumption order as the SWAR path).
#[inline]
fn dequant_group_lut(words: &[u32], table: &[i8; 16], out: &mut [i8]) {
    debug_assert_eq!(words.len() * 8, out.len());
    for (w, chunk) in words.iter().zip(out.chunks_exact_mut(8)) {
        for b in 0..4 {
            chunk[b] = table[((w >> (8 * b)) & 0xF) as usize];
            chunk[4 + b] = table[((w >> (8 * b + 4)) & 0xF) as usize];
        }
    }
}

/// W4A8 weights for the LUT backend: LQQ codes in the dual-MMA packed
/// layout plus one 16-entry table per group (tables replace the group
/// parameters at kernel time; the parameters themselves are not
/// stored).
#[derive(Debug, Clone)]
pub struct PackedLutLinear {
    /// Output channels.
    pub n: usize,
    /// Reduction dim.
    pub k: usize,
    /// Group size along K (multiple of 8).
    pub group: usize,
    /// Interleave-packed UINT4 words, dual-MMA layout.
    pub words: DualMmaWeights,
    /// One dequant table per group, `n × k/group` row-major.
    pub tables: Vec<[i8; 16]>,
    /// Level-1 per-channel scales (length `n`).
    pub channel_scales: Vec<f32>,
}

impl PackedLutLinear {
    /// Build from an LQQ-quantized linear (same quantizer as the SWAR
    /// backend; only the kernel-time representation differs).
    #[must_use]
    pub fn from_quantized(q: &QuantizedLinear) -> Self {
        let Level2::Lqq(t) = &q.level2 else {
            panic!("expected an LQQ-quantized linear");
        };
        Self::from_tensor(t, q.channel_scales.iter().map(|s| s.scale).collect())
    }

    /// Build from an [`LqqTensor`] plus channel scales.
    #[must_use]
    pub fn from_tensor(t: &LqqTensor, channel_scales: Vec<f32>) -> Self {
        assert_eq!(channel_scales.len(), t.rows());
        assert_eq!(t.group() % 8, 0, "group size must be a multiple of 8");
        assert!(t.group() <= MAX_GROUP, "group exceeds MAX_GROUP");
        let words = DualMmaWeights::pack(&t.values, t.rows(), t.cols());
        Self {
            n: t.rows(),
            k: t.cols(),
            group: t.group(),
            words,
            tables: t.groups.iter().map(|&p| group_lut(p)).collect(),
            channel_scales,
        }
    }

    /// Quantize FP weights end-to-end (LQQ quantizer + table build).
    #[must_use]
    pub fn quantize(w: &Mat<f32>, group: usize) -> Self {
        let q = QuantizedLinear::quantize(w, group, QuantScheme::Lqq, None);
        Self::from_quantized(&q)
    }

    /// Groups per row.
    #[must_use]
    pub fn groups_per_row(&self) -> usize {
        self.k / self.group
    }

    /// The dequant table of `(row, group_index)`.
    #[inline]
    #[must_use]
    pub fn table(&self, row: usize, g: usize) -> &[i8; 16] {
        &self.tables[row * self.groups_per_row() + g]
    }
}

impl PackedWeights for PackedLutLinear {
    fn backend(&self) -> BackendId {
        BackendId::Lut
    }

    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn group(&self) -> usize {
        self.group
    }

    fn channel_scales(&self) -> &[f32] {
        &self.channel_scales
    }

    fn rows_words(&self, r0: usize, r1: usize) -> &[u32] {
        self.words.rows_words(r0, r1)
    }

    fn dequant_row_group(&self, row: usize, g: usize, out: &mut [i8]) {
        let words = self
            .words
            .row_kslice(row, g * self.group, (g + 1) * self.group);
        dequant_group_lut(words, self.table(row, g), out);
    }

    fn tile_dequant(&self, j0: usize, j1: usize) -> Box<dyn TileDequant> {
        let gpr = self.groups_per_row();
        Box::new(LutTile {
            k: self.k,
            group: self.group,
            tables: self.tables[j0 * gpr..j1 * gpr].to_vec(),
            channel_scales: self.channel_scales[j0..j1].to_vec(),
        })
    }

    fn weight_bytes(&self) -> usize {
        self.words.packed_bytes() + self.tables.len() * 16 + self.channel_scales.len() * 4
    }
}

/// Owned LUT tile recipe: the tables of the tile's rows, copied out.
struct LutTile {
    k: usize,
    group: usize,
    tables: Vec<[i8; 16]>,
    channel_scales: Vec<f32>,
}

impl TileDequant for LutTile {
    fn k(&self) -> usize {
        self.k
    }

    fn group(&self) -> usize {
        self.group
    }

    fn channel_scales(&self) -> &[f32] {
        &self.channel_scales
    }

    fn dequant_group(&self, words: &[u32], j_rel: usize, g: usize, out: &mut [i8]) {
        let wpr = self.k / 8;
        let wpg = self.group / 8;
        let off = j_rel * wpr + g * wpg;
        let gpr = self.k / self.group;
        dequant_group_lut(&words[off..off + wpg], &self.tables[j_rel * gpr + g], out);
    }
}

/// The LUT-GEMM-style backend registry entry.
pub struct LutDequantBackend;

impl KernelBackend for LutDequantBackend {
    fn id(&self) -> BackendId {
        BackendId::Lut
    }

    fn name(&self) -> &'static str {
        "LUT dequant (per-group 16-entry tables)"
    }

    fn cost(&self) -> BackendCost {
        BackendCost {
            // Two extracts + one gather per element, no multiply.
            alpha: 2.0,
            weight_bytes_per_elem: 0.5 + 16.0 / 64.0,
            overlap_dq: true,
            bit_exact: true,
        }
    }

    fn pack(&self, w: &Mat<f32>, group: usize) -> Arc<dyn PackedWeights> {
        Arc::new(PackedLutLinear::quantize(w, group))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dequant::dequant_group_lqq;

    #[test]
    fn table_matches_scalar_on_quantizer_codes() {
        // Quantize real groups and check the table agrees with the
        // scalar reference on every emitted code.
        for seed in 0..32 {
            let group: Vec<i8> = (0..64)
                .map(|i| (((i * 37 + seed * 101) % 239) - 119) as i8)
                .collect();
            let (p, codes) = LqqGroup::quantize(&group);
            let lut = group_lut(p);
            for &c in &codes {
                assert_eq!(lut[c as usize], p.dequant_scalar(c), "seed {seed} code {c}");
            }
        }
    }

    #[test]
    fn lut_dequant_is_bit_exact_vs_swar() {
        let w = Mat::from_fn(16, 256, |r, c| ((r * 256 + c) as f32 * 0.07).sin() * 3.0);
        let q = QuantizedLinear::quantize(&w, 64, QuantScheme::Lqq, None);
        let lut = PackedLutLinear::from_quantized(&q);
        let swar = crate::packed::PackedLqqLinear::from_quantized(&q);
        let mut via_lut = vec![0i8; 64];
        let mut via_swar = vec![0i8; 64];
        for row in 0..16 {
            for g in 0..4 {
                lut.dequant_row_group(row, g, &mut via_lut);
                dequant_group_lqq(
                    swar.group_words(row, g),
                    swar.group_params(row, g),
                    &mut via_swar,
                );
                assert_eq!(via_lut, via_swar, "row {row} group {g}");
            }
        }
    }

    #[test]
    fn lut_weight_bytes_exceed_lqq_by_table_overhead() {
        let w = Mat::from_fn(8, 128, |r, c| ((r + c) as f32 * 0.3).cos());
        let lut = PackedLutLinear::quantize(&w, 64);
        let lqq = crate::packed::PackedLqqLinear::quantize(&w, 64);
        // 16 bytes/group of table vs 2 bytes/group of params.
        assert_eq!(
            PackedWeights::weight_bytes(&lut) - lqq.weight_bytes(),
            8 * 2 * (16 - 2)
        );
    }
}
