//! Hot-loop SWAR group dequantization — the *uncounted* twins of the
//! audited paths in [`crate::lqq`] / [`crate::qoq`]: same arithmetic,
//! zero bookkeeping, `#[inline(always)]`.
//!
//! These used to live next to the microkernel in `lq-core`; they moved
//! here when the kernel-backend layer ([`crate::backend`]) made the
//! dequantization algorithm a property of the *weights* rather than of
//! the kernel, so every consumer (serial kernels, pipeline tile jobs,
//! the packed-weight containers themselves) reaches them through the
//! same crate that owns the group parameters.
//!
//! All functions consume interleave-packed words
//! ([`lq_layout::pack::pack_interleaved8`]): the `lo` half of a word
//! carries logical elements `0..4` and the `hi` half elements `4..8`,
//! so outputs land in consumption order with no online shuffle.

use crate::lqq::LqqGroup;
use crate::qoq::QoqGroup;

/// Lane mask selecting the low nibble of every byte.
const NIB: u32 = 0x0F0F_0F0F;
/// MSB-of-every-byte mask (the LQQ XOR constant).
const MSB: u32 = 0x8080_8080;
/// Low-7-bits-of-every-byte mask (carryless subtract).
const LO7: u32 = 0x7F7F_7F7F;

/// LQQ fast dequantization of one packed word (8 elements):
/// unpack + `IMAD` + `XOR`. Returns `(lo, hi)` registers whose bytes are
/// the INT8 bit patterns of elements `0..4` and `4..8` in consumption
/// order (the pack step pre-interleaved them).
#[inline(always)]
#[must_use]
pub fn dequant8_lqq_raw(word: u32, s: u32, a_packed: u32) -> (u32, u32) {
    let lo = ((word & NIB).wrapping_mul(s).wrapping_add(a_packed)) ^ MSB;
    let hi = (((word >> 4) & NIB).wrapping_mul(s).wrapping_add(a_packed)) ^ MSB;
    (lo, hi)
}

/// Carryless byte-wise subtract — the sequence Hopper must emit for the
/// missing `vsub4` (7 ALU ops; see `lq_swar::vadd::vsub4_lowered`).
#[inline(always)]
#[must_use]
fn vsub4_raw(a: u32, b: u32) -> u32 {
    let t = (a | MSB).wrapping_sub(b & LO7);
    t ^ ((a ^ !b) & MSB)
}

/// QoQ baseline dequantization of one packed word: unpack + multiply +
/// emulated byte-wise subtract. Same output convention as
/// [`dequant8_lqq_raw`]; ~2.7× the instruction count.
#[inline(always)]
#[must_use]
pub fn dequant8_qoq_raw(word: u32, s: u32, zs_packed: u32) -> (u32, u32) {
    let lo = vsub4_raw((word & NIB).wrapping_mul(s), zs_packed);
    let hi = vsub4_raw(((word >> 4) & NIB).wrapping_mul(s), zs_packed);
    (lo, hi)
}

/// Dequantize a full LQQ group of packed words into an INT8 buffer.
///
/// `words` holds `group_len/8` interleave-packed words; `out` receives
/// `group_len` INT8 values in logical order.
#[inline]
pub fn dequant_group_lqq(words: &[u32], params: LqqGroup, out: &mut [i8]) {
    debug_assert_eq!(words.len() * 8, out.len());
    let s = u32::from(params.s_u8);
    let a = u32::from(params.offset_a()) * 0x0101_0101;
    for (w, chunk) in words.iter().zip(out.chunks_exact_mut(8)) {
        let (lo, hi) = dequant8_lqq_raw(*w, s, a);
        let lo = lo.to_le_bytes();
        let hi = hi.to_le_bytes();
        chunk[0] = lo[0] as i8;
        chunk[1] = lo[1] as i8;
        chunk[2] = lo[2] as i8;
        chunk[3] = lo[3] as i8;
        chunk[4] = hi[0] as i8;
        chunk[5] = hi[1] as i8;
        chunk[6] = hi[2] as i8;
        chunk[7] = hi[3] as i8;
    }
}

/// Dequantize a full QoQ group of packed words into an INT8 buffer
/// (baseline path with the emulated byte-subtract).
#[inline]
pub fn dequant_group_qoq(words: &[u32], params: QoqGroup, out: &mut [i8]) {
    debug_assert_eq!(words.len() * 8, out.len());
    let s = u32::from(params.s_u8);
    let zs = u32::from(params.zs()) * 0x0101_0101;
    for (w, chunk) in words.iter().zip(out.chunks_exact_mut(8)) {
        let (lo, hi) = dequant8_qoq_raw(*w, s, zs);
        let lo = lo.to_le_bytes();
        let hi = hi.to_le_bytes();
        chunk[0] = lo[0] as i8;
        chunk[1] = lo[1] as i8;
        chunk[2] = lo[2] as i8;
        chunk[3] = lo[3] as i8;
        chunk[4] = hi[0] as i8;
        chunk[5] = hi[1] as i8;
        chunk[6] = hi[2] as i8;
        chunk[7] = hi[3] as i8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lq_layout::pack::pack_interleaved8;

    #[test]
    fn raw_lqq_matches_audited_path() {
        for seed in 0..64u32 {
            let vals: Vec<u8> = (0..8)
                .map(|i| ((seed.wrapping_mul(31) + i * 7) % 16) as u8)
                .collect();
            let p = LqqGroup {
                s_u8: 1 + (seed % 16) as u8,
                min_i8: -119 + (seed % 200) as i8,
            };
            // Skip parameter combos that violate the LQQ invariant
            // (only reachable with adversarial params, not real quantization).
            if vals
                .iter()
                .any(|&v| u16::from(v) * u16::from(p.s_u8) + u16::from(p.offset_a()) > 255)
            {
                continue;
            }
            let word = pack_interleaved8(&vals);
            let s = u32::from(p.s_u8);
            let a = u32::from(p.offset_a()) * 0x0101_0101;
            let (lo, hi) = dequant8_lqq_raw(word, s, a);
            for i in 0..4 {
                assert_eq!(lo.to_le_bytes()[i] as i8, p.dequant_scalar(vals[i]));
                assert_eq!(hi.to_le_bytes()[i] as i8, p.dequant_scalar(vals[4 + i]));
            }
        }
    }

    #[test]
    fn raw_qoq_matches_audited_path() {
        for seed in 0..64u32 {
            let vals: Vec<u8> = (0..8)
                .map(|i| ((seed.wrapping_mul(17) + i * 5) % 16) as u8)
                .collect();
            let p = QoqGroup {
                s_u8: 1 + (seed % 16) as u8,
                z: (seed % 16) as u8,
            };
            let word = pack_interleaved8(&vals);
            let s = u32::from(p.s_u8);
            let zs = u32::from(p.zs()) * 0x0101_0101;
            let (lo, hi) = dequant8_qoq_raw(word, s, zs);
            for i in 0..4 {
                assert_eq!(lo.to_le_bytes()[i] as i8, p.dequant_scalar(vals[i]));
                assert_eq!(hi.to_le_bytes()[i] as i8, p.dequant_scalar(vals[4 + i]));
            }
        }
    }

    #[test]
    fn group_dequant_lqq_roundtrip() {
        let group: Vec<i8> = (0..64).map(|i| ((i * 37) % 239 - 119) as i8).collect();
        let (p, codes) = LqqGroup::quantize(&group);
        let words: Vec<u32> = codes.chunks_exact(8).map(pack_interleaved8).collect();
        let mut out = vec![0i8; 64];
        dequant_group_lqq(&words, p, &mut out);
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(out[i], p.dequant_scalar(c), "elem {i}");
        }
    }

    #[test]
    fn group_dequant_qoq_roundtrip() {
        let group: Vec<i8> = (0..64).map(|i| ((i * 53) % 239 - 119) as i8).collect();
        let (p, codes) = QoqGroup::quantize(&group);
        let words: Vec<u32> = codes.chunks_exact(8).map(pack_interleaved8).collect();
        let mut out = vec![0i8; 64];
        dequant_group_qoq(&words, p, &mut out);
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(out[i], p.dequant_scalar(c), "elem {i}");
        }
    }
}
