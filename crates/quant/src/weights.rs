//! End-to-end offline weight quantization pipeline (paper, Section 6).
//!
//! `FP weights → [smooth] → per-channel INT8 (protective range) →
//! per-group UINT4 (LQQ or QoQ)`, producing a [`QuantizedLinear`] that
//! the GEMM kernels consume. The two second-level schemes share the
//! level-1 result so comparisons isolate the dequantization algorithm.

use crate::level1::{quantize_per_channel_i8, ChannelScale};
use crate::lqq::LqqTensor;
use crate::mat::Mat;
use crate::qoq::QoqTensor;
use crate::smooth::smooth_weights;

/// Which second-level scheme a linear layer was quantized with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantScheme {
    /// LiquidQuant: shift-based grid, IMAD+XOR dequantization.
    Lqq,
    /// QServe QoQ: zero-point grid, emulated-vsub dequantization.
    Qoq,
}

/// Second-level storage (scheme-specific).
#[derive(Debug, Clone)]
pub enum Level2 {
    /// LiquidQuant tensor.
    Lqq(LqqTensor),
    /// QoQ tensor.
    Qoq(QoqTensor),
}

/// A fully quantized `N×K` linear layer (W4, two-level).
///
/// ```
/// use lq_quant::mat::Mat;
/// use lq_quant::weights::{QuantScheme, QuantizedLinear};
/// let w = Mat::from_fn(8, 64, |r, c| ((r * 64 + c) as f32 * 0.1).sin());
/// let q = QuantizedLinear::quantize(&w, 64, QuantScheme::Lqq, None);
/// assert_eq!(q.weight_bytes(), 8 * 64 / 2); // 4 bits per weight
/// let back = q.dequant_to_f32();
/// assert_eq!((back.rows(), back.cols()), (8, 64));
/// ```
#[derive(Debug, Clone)]
pub struct QuantizedLinear {
    /// Output features (N).
    pub n: usize,
    /// Input features (K).
    pub k: usize,
    /// Group size along K.
    pub group: usize,
    /// Level-1 per-channel scales (length N).
    pub channel_scales: Vec<ChannelScale>,
    /// Second-level UINT4 tensor.
    pub level2: Level2,
    /// Smooth scales applied to weights before quantization (length K),
    /// if SmoothQuant calibration was used. Activations must be divided
    /// by the same vector.
    pub smooth: Option<Vec<f32>>,
}

impl QuantizedLinear {
    /// Quantize FP weights (`N×K`) with the full two-level pipeline.
    #[must_use]
    pub fn quantize(
        w: &Mat<f32>,
        group: usize,
        scheme: QuantScheme,
        smooth: Option<Vec<f32>>,
    ) -> Self {
        let smoothed;
        let w_eff = if let Some(s) = &smooth {
            smoothed = smooth_weights(w, s);
            &smoothed
        } else {
            w
        };
        let l1 = quantize_per_channel_i8(w_eff);
        let level2 = match scheme {
            QuantScheme::Lqq => Level2::Lqq(LqqTensor::quantize(&l1.q, group)),
            QuantScheme::Qoq => Level2::Qoq(QoqTensor::quantize(&l1.q, group)),
        };
        Self {
            n: w.rows(),
            k: w.cols(),
            group,
            channel_scales: l1.scales,
            level2,
            smooth,
        }
    }

    /// The scheme in use.
    #[must_use]
    pub fn scheme(&self) -> QuantScheme {
        match self.level2 {
            Level2::Lqq(_) => QuantScheme::Lqq,
            Level2::Qoq(_) => QuantScheme::Qoq,
        }
    }

    /// Dequantize level-2 back to INT8 (scalar reference path).
    #[must_use]
    pub fn dequant_to_i8(&self) -> Mat<i8> {
        match &self.level2 {
            Level2::Lqq(t) => t.dequantize(),
            Level2::Qoq(t) => t.dequantize(),
        }
    }

    /// Full dequantization back to FP (both levels + smooth undo),
    /// the reference for accuracy measurement.
    #[must_use]
    pub fn dequant_to_f32(&self) -> Mat<f32> {
        let i8m = self.dequant_to_i8();
        Mat::from_fn(self.n, self.k, |r, c| {
            let mut v = f32::from(*i8m.get(r, c)) * self.channel_scales[r].scale;
            if let Some(s) = &self.smooth {
                v /= s[c];
            }
            v
        })
    }

    /// Bytes of 4-bit weight storage (excluding scales), for memory
    /// accounting in the serving simulator.
    #[must_use]
    pub fn weight_bytes(&self) -> usize {
        self.n * self.k / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::error_stats;

    fn test_weights(n: usize, k: usize) -> Mat<f32> {
        Mat::from_fn(n, k, |r, c| {
            ((r * k + c) as f32 * 0.31).sin() * (1.0 + r as f32 * 0.1)
        })
    }

    #[test]
    fn pipeline_produces_consistent_shapes() {
        let w = test_weights(8, 128);
        let q = QuantizedLinear::quantize(&w, 64, QuantScheme::Lqq, None);
        assert_eq!((q.n, q.k, q.group), (8, 128, 64));
        assert_eq!(q.channel_scales.len(), 8);
        assert_eq!(q.scheme(), QuantScheme::Lqq);
        assert_eq!(q.weight_bytes(), 8 * 128 / 2);
    }

    #[test]
    fn two_level_roundtrip_error_small() {
        let w = test_weights(16, 256);
        for scheme in [QuantScheme::Lqq, QuantScheme::Qoq] {
            let q = QuantizedLinear::quantize(&w, 64, scheme, None);
            let back = q.dequant_to_f32();
            let e = error_stats(&w, &back);
            // 4-bit group-wise on smooth data: expect > 20 dB SQNR.
            assert!(e.sqnr_db > 20.0, "{scheme:?}: sqnr {}", e.sqnr_db);
            assert!(e.cosine > 0.99, "{scheme:?}: cosine {}", e.cosine);
        }
    }

    #[test]
    fn smooth_scales_are_undone_in_dequant() {
        let w = test_weights(4, 64);
        let smooth: Vec<f32> = (0..64).map(|i| 1.0 + (i % 7) as f32 * 0.5).collect();
        let q = QuantizedLinear::quantize(&w, 64, QuantScheme::Lqq, Some(smooth));
        let back = q.dequant_to_f32();
        let e = error_stats(&w, &back);
        // Smoothing widens some channel ranges, so the bar is slightly
        // lower than the unsmoothed 20 dB case.
        assert!(e.sqnr_db > 18.0, "sqnr {}", e.sqnr_db);
    }

    #[test]
    fn lqq_and_qoq_share_level1() {
        let w = test_weights(4, 64);
        let a = QuantizedLinear::quantize(&w, 64, QuantScheme::Lqq, None);
        let b = QuantizedLinear::quantize(&w, 64, QuantScheme::Qoq, None);
        for (x, y) in a.channel_scales.iter().zip(b.channel_scales.iter()) {
            assert_eq!(x.scale, y.scale);
        }
    }
}
