//! Kernel-ready W4A8 weight containers for the two SWAR dequant
//! schemes, packed in the dual-MMA layout (paper, Section 5.2).
//!
//! Each container stores the weights in the exact memory format its
//! kernel streams, plus the scale metadata its epilogue needs, and
//! reports its weight-memory footprint for the serving simulator's
//! memory accounting. They moved here from `lq-core` together with the
//! backend trait layer ([`crate::backend`]) so that a quant scheme, its
//! packed container, and its [`crate::backend::KernelBackend`] entry
//! live in one crate; `lq-core` re-exports them unchanged.

use crate::lqq::{LqqGroup, LqqTensor};
use crate::mat::Mat;
use crate::qoq::{QoqGroup, QoqTensor};
use crate::weights::{Level2, QuantScheme, QuantizedLinear};
use lq_layout::dual_mma::DualMmaWeights;

/// W4A8 weights with LiquidQuant parameters, packed in the dual-MMA
/// layout — what the LiquidGEMM kernels consume.
#[derive(Debug, Clone)]
pub struct PackedLqqLinear {
    /// Output channels.
    pub n: usize,
    /// Reduction dim.
    pub k: usize,
    /// Group size along K (multiple of 8).
    pub group: usize,
    /// Interleave-packed UINT4 words, dual-MMA layout.
    pub words: DualMmaWeights,
    /// Per-group LQQ parameters, `n × k/group` row-major.
    pub groups: Vec<LqqGroup>,
    /// Level-1 per-channel scales (length `n`).
    pub channel_scales: Vec<f32>,
}

impl PackedLqqLinear {
    /// Pack from the offline quantization result. Panics if the linear
    /// was quantized with a different scheme.
    #[must_use]
    pub fn from_quantized(q: &QuantizedLinear) -> Self {
        let Level2::Lqq(t) = &q.level2 else {
            panic!("expected an LQQ-quantized linear");
        };
        Self::from_tensor(t, q.channel_scales.iter().map(|s| s.scale).collect())
    }

    /// Pack directly from an [`LqqTensor`] plus channel scales.
    #[must_use]
    pub fn from_tensor(t: &LqqTensor, channel_scales: Vec<f32>) -> Self {
        assert_eq!(channel_scales.len(), t.rows());
        assert_eq!(t.group() % 8, 0, "group size must be a multiple of 8");
        let words = DualMmaWeights::pack(&t.values, t.rows(), t.cols());
        Self {
            n: t.rows(),
            k: t.cols(),
            group: t.group(),
            words,
            groups: t.groups.clone(),
            channel_scales,
        }
    }

    /// Quantize FP weights end-to-end (level-1 + LQQ level-2 + pack).
    #[must_use]
    pub fn quantize(w: &Mat<f32>, group: usize) -> Self {
        let q = QuantizedLinear::quantize(w, group, QuantScheme::Lqq, None);
        Self::from_quantized(&q)
    }

    /// Groups per row.
    #[must_use]
    pub fn groups_per_row(&self) -> usize {
        self.k / self.group
    }

    /// Group parameters for `(row, group_index)`.
    #[inline]
    #[must_use]
    pub fn group_params(&self, row: usize, g: usize) -> LqqGroup {
        self.groups[row * self.groups_per_row() + g]
    }

    /// Packed words of group `g` of `row` (length `group/8`).
    #[inline]
    #[must_use]
    pub fn group_words(&self, row: usize, g: usize) -> &[u32] {
        self.words
            .row_kslice(row, g * self.group, (g + 1) * self.group)
    }

    /// Weight bytes (4-bit payload + group params + channel scales) —
    /// the serving simulator's memory model.
    #[must_use]
    pub fn weight_bytes(&self) -> usize {
        self.words.packed_bytes() + self.groups.len() * 2 + self.channel_scales.len() * 4
    }
}

/// W4A8 weights with QoQ parameters (the QServe baseline kernel's
/// format). Same packing; different per-group metadata and dequant path.
#[derive(Debug, Clone)]
pub struct PackedQoqLinear {
    /// Output channels.
    pub n: usize,
    /// Reduction dim.
    pub k: usize,
    /// Group size along K (multiple of 8).
    pub group: usize,
    /// Interleave-packed UINT4 words.
    pub words: DualMmaWeights,
    /// Per-group QoQ parameters.
    pub groups: Vec<QoqGroup>,
    /// Level-1 per-channel scales.
    pub channel_scales: Vec<f32>,
}

impl PackedQoqLinear {
    /// Pack from the offline quantization result (QoQ scheme).
    #[must_use]
    pub fn from_quantized(q: &QuantizedLinear) -> Self {
        let Level2::Qoq(t) = &q.level2 else {
            panic!("expected a QoQ-quantized linear");
        };
        Self::from_tensor(t, q.channel_scales.iter().map(|s| s.scale).collect())
    }

    /// Pack directly from a [`QoqTensor`] plus channel scales.
    #[must_use]
    pub fn from_tensor(t: &QoqTensor, channel_scales: Vec<f32>) -> Self {
        assert_eq!(t.group() % 8, 0, "group size must be a multiple of 8");
        let words = DualMmaWeights::pack(&t.values, t.rows(), t.cols());
        Self {
            n: t.rows(),
            k: t.cols(),
            group: t.group(),
            words,
            groups: t.groups.clone(),
            channel_scales,
        }
    }

    /// Quantize FP weights end-to-end with the QoQ scheme.
    #[must_use]
    pub fn quantize(w: &Mat<f32>, group: usize) -> Self {
        let q = QuantizedLinear::quantize(w, group, QuantScheme::Qoq, None);
        Self::from_quantized(&q)
    }

    /// Groups per row.
    #[must_use]
    pub fn groups_per_row(&self) -> usize {
        self.k / self.group
    }

    /// Group parameters for `(row, group_index)`.
    #[inline]
    #[must_use]
    pub fn group_params(&self, row: usize, g: usize) -> QoqGroup {
        self.groups[row * self.groups_per_row() + g]
    }

    /// Packed words of group `g` of `row`.
    #[inline]
    #[must_use]
    pub fn group_words(&self, row: usize, g: usize) -> &[u32] {
        self.words
            .row_kslice(row, g * self.group, (g + 1) * self.group)
    }

    /// Weight bytes.
    #[must_use]
    pub fn weight_bytes(&self) -> usize {
        self.words.packed_bytes() + self.groups.len() * 2 + self.channel_scales.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights(n: usize, k: usize) -> Mat<f32> {
        Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.17).sin() * 2.0)
    }

    #[test]
    fn lqq_pack_preserves_values() {
        let w = weights(8, 128);
        let q = QuantizedLinear::quantize(&w, 64, QuantScheme::Lqq, None);
        let p = PackedLqqLinear::from_quantized(&q);
        assert_eq!((p.n, p.k, p.group), (8, 128, 64));
        // Unpacked words must equal the tensor's values.
        let Level2::Lqq(t) = &q.level2 else {
            unreachable!()
        };
        assert_eq!(p.words.unpack_all(), t.values);
        assert_eq!(p.groups_per_row(), 2);
        assert_eq!(p.group_words(3, 1).len(), 8);
    }

    #[test]
    #[should_panic(expected = "expected an LQQ-quantized linear")]
    fn wrong_scheme_panics() {
        let w = weights(2, 64);
        let q = QuantizedLinear::quantize(&w, 64, QuantScheme::Qoq, None);
        let _ = PackedLqqLinear::from_quantized(&q);
    }
}
