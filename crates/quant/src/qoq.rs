//! QServe's QoQ second level — the baseline LiquidQuant replaces.
//!
//! QServe quantizes INT8 → UINT4 on a zero-point grid and dequantizes
//! with *subtraction after multiplication* (paper, Section 3.2):
//!
//! ```text
//! Q̂_i8 = Q_u4 · s_i8 − (z · s_i8)
//! ```
//!
//! The product stays in UINT8 thanks to the protective range, but the
//! subtraction of the packed `z·s` term can wrap per byte, so it must be
//! performed **byte-wise** — and on Hopper there is no hardware `vsub4`,
//! so the compiler lowers it to the carryless SWAR sequence
//! ([`lq_swar::vadd::vsub4_lowered`], 7 instructions). Total:
//! 3 (unpack) + 2 × (1 `IMAD` + 7 lowered `vsub4`) = **19 instructions
//! per 8 elements** (α ≈ 2.4), versus LiquidQuant's 7. The paper's Nsight
//! profile attributes 21 % of warp stalls to this path.
//!
//! Semantically the grid is as accurate as LQQ's (both have step `s`);
//! the entire difference is instruction cost — which is the paper's
//! point, and which `lq-quant::metrics` verifies.

use lq_swar::audit::CountingAlu;
use lq_swar::lanes::broadcast_u8;
use lq_swar::unpack::{unpack8_u4_to_2xu8x4, Unpacked8};
use lq_swar::vadd::vsub4_lowered;

use crate::level1::PROTECTIVE_MAX;
use crate::mat::Mat;

/// Per-group QoQ parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QoqGroup {
    /// Integer scale `s_i8 ∈ [1, 16]` (same bound as LQQ, from the
    /// protective range).
    pub s_u8: u8,
    /// Zero point `z ∈ [0, 15]`.
    pub z: u8,
}

impl QoqGroup {
    /// The precomputed packed subtrahend `z·s` (≤ 240, a valid byte).
    #[inline]
    #[must_use]
    pub fn zs(self) -> u8 {
        self.z * self.s_u8
    }

    /// Quantize one group of level-1 INT8 values to UINT4 on the
    /// zero-point grid.
    #[must_use]
    pub fn quantize(group: &[i8]) -> (Self, Vec<u8>) {
        assert!(!group.is_empty(), "empty quantization group");
        debug_assert!(
            group
                .iter()
                .all(|&q| (-PROTECTIVE_MAX..=PROTECTIVE_MAX).contains(&q)),
            "level-1 value outside protective range"
        );
        let min = i16::from(*group.iter().min().expect("non-empty"));
        let max = i16::from(*group.iter().max().expect("non-empty"));
        // The zero-point grid `(c - z)·s, c ∈ [0,15], z ∈ [0,15]` always
        // contains 0, so the covered range must be extended to include 0
        // — otherwise an all-positive (or all-negative) group would need
        // a negative zero point and the clamp would destroy it.
        let lo = min.min(0);
        let hi = max.max(0);
        let s = ((((hi - lo) as f32) / 15.0).round() as i16).clamp(1, 16) as u8;
        let z = ((-lo as f32 / f32::from(s)).round() as i16).clamp(0, 15) as u8;
        let codes = group
            .iter()
            .map(|&q| {
                let c = (f32::from(q) / f32::from(s)).round() as i16 + i16::from(z);
                c.clamp(0, 15) as u8
            })
            .collect();
        (Self { s_u8: s, z }, codes)
    }

    /// Scalar reference dequantization with byte-wrapping semantics
    /// (matching what the byte-wise subtract computes on hardware).
    #[inline]
    #[must_use]
    pub fn dequant_scalar(self, q_u4: u8) -> i8 {
        debug_assert!(q_u4 < 16);
        let prod = q_u4 * self.s_u8; // ≤ 240: protective range
        prod.wrapping_sub(self.zs()) as i8
    }

    /// Register-level dequantization of 8 packed UINT4 elements,
    /// charging the full emulated-`vsub4` cost on `alu`:
    /// **19 instructions per 8 elements**.
    #[must_use]
    pub fn dequant_packed8(self, alu: &mut CountingAlu, packed: u32) -> Unpacked8 {
        let u = unpack8_u4_to_2xu8x4(alu, packed);
        let s = u32::from(self.s_u8);
        let zs = broadcast_u8(self.zs());
        let lo_prod = alu.imad(u.lo, s, 0);
        let lo = vsub4_lowered(alu, lo_prod, zs);
        let hi_prod = alu.imad(u.hi, s, 0);
        let hi = vsub4_lowered(alu, hi_prod, zs);
        Unpacked8 { lo, hi }
    }

    /// Dequantize 8 packed elements back to original element order.
    #[must_use]
    pub fn dequant8_ordered(self, alu: &mut CountingAlu, packed: u32) -> [i8; 8] {
        let r = self.dequant_packed8(alu, packed);
        let lo = r.lo.to_le_bytes();
        let hi = r.hi.to_le_bytes();
        let mut out = [0i8; 8];
        for k in 0..4 {
            out[2 * k] = lo[k] as i8;
            out[2 * k + 1] = hi[k] as i8;
        }
        out
    }
}

/// A level-1 INT8 tensor quantized group-wise to UINT4 with QoQ
/// (baseline counterpart of [`crate::lqq::LqqTensor`]).
#[derive(Debug, Clone)]
pub struct QoqTensor {
    rows: usize,
    cols: usize,
    group: usize,
    /// UINT4 codes, row-major.
    pub values: Vec<u8>,
    /// Group parameters, `rows × cols/group`, row-major.
    pub groups: Vec<QoqGroup>,
}

impl QoqTensor {
    /// Quantize an `N×K` level-1 INT8 matrix with groups along K.
    #[must_use]
    pub fn quantize(q_i8: &Mat<i8>, group: usize) -> Self {
        assert!(group > 0, "group size must be positive");
        assert_eq!(q_i8.cols() % group, 0, "K not a multiple of group size");
        let gpr = q_i8.cols() / group;
        let mut values = Vec::with_capacity(q_i8.len());
        let mut groups = Vec::with_capacity(q_i8.rows() * gpr);
        for r in 0..q_i8.rows() {
            let row = q_i8.row(r);
            for g in 0..gpr {
                let (params, codes) = QoqGroup::quantize(&row[g * group..(g + 1) * group]);
                groups.push(params);
                values.extend_from_slice(&codes);
            }
        }
        Self {
            rows: q_i8.rows(),
            cols: q_i8.cols(),
            group,
            values,
            groups,
        }
    }

    /// Rows (output channels, N).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns (reduction dim, K).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Group size along K.
    #[must_use]
    pub fn group(&self) -> usize {
        self.group
    }

    /// Groups per row.
    #[must_use]
    pub fn groups_per_row(&self) -> usize {
        self.cols / self.group
    }

    /// Group parameters for `(row, k)`.
    #[inline]
    #[must_use]
    pub fn group_at(&self, row: usize, k: usize) -> QoqGroup {
        self.groups[row * self.groups_per_row() + k / self.group]
    }

    /// Dequantize the whole tensor back to INT8.
    #[must_use]
    pub fn dequantize(&self) -> Mat<i8> {
        Mat::from_fn(self.rows, self.cols, |r, k| {
            self.group_at(r, k)
                .dequant_scalar(self.values[r * self.cols + k])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_group_roundtrip_error_bounded() {
        let group = [-119i8, -60, -3, 0, 7, 60, 119];
        let (p, codes) = QoqGroup::quantize(&group);
        assert!(p.s_u8 >= 1 && p.s_u8 <= 16);
        for (&orig, &code) in group.iter().zip(codes.iter()) {
            let back = p.dequant_scalar(code);
            let err = (i16::from(back) - i16::from(orig)).abs();
            assert!(
                err <= i16::from(p.s_u8),
                "orig={orig} back={back} s={}",
                p.s_u8
            );
        }
    }

    #[test]
    fn packed8_matches_scalar_and_costs_nineteen() {
        let group: Vec<i8> = vec![-119, -77, -13, 0, 13, 64, 99, 119];
        let (p, codes) = QoqGroup::quantize(&group);
        let packed = lq_swar::unpack::pack8_u4([
            codes[0], codes[1], codes[2], codes[3], codes[4], codes[5], codes[6], codes[7],
        ]);
        let mut alu = CountingAlu::new();
        let out = p.dequant8_ordered(&mut alu, packed);
        assert_eq!(alu.count().total(), 19, "QoQ must cost 19 instrs / 8 elems");
        for i in 0..8 {
            assert_eq!(out[i], p.dequant_scalar(codes[i]), "elem {i}");
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants ARE the claim under test
    fn qoq_cost_exceeds_lqq_by_paper_factor() {
        // 19 vs 7: the ~2.7x instruction-pressure gap driving Figure 13's
        // LQQ ablation speedup.
        use lq_swar::audit::{LQQ_BUDGET, QOQ_BUDGET};
        assert_eq!(QOQ_BUDGET.instrs_per_8, 19);
        assert_eq!(LQQ_BUDGET.instrs_per_8, 7);
        assert!(QOQ_BUDGET.alpha / LQQ_BUDGET.alpha > 2.5);
    }

    #[test]
    fn wrapping_subtraction_reproduces_negative_values() {
        // q=0, z=8, s=15: prod=0, zs=120 → 0 - 120 = -120 via wrap.
        let p = QoqGroup { s_u8: 15, z: 8 };
        assert_eq!(p.dequant_scalar(0), -120);
        assert_eq!(p.dequant_scalar(8), 0);
        assert_eq!(p.dequant_scalar(15), 105);
    }

    #[test]
    fn tensor_roundtrip_error_bounded() {
        let m = Mat::from_fn(4, 128, |r, c| {
            (((r * 37 + c * 11) % 239) as i16 - 119) as i8
        });
        let t = QoqTensor::quantize(&m, 64);
        let back = t.dequantize();
        for r in 0..4 {
            for k in 0..128 {
                let err = (i16::from(*back.get(r, k)) - i16::from(*m.get(r, k))).abs();
                let s = t.group_at(r, k).s_u8;
                assert!(err <= i16::from(s) + 1, "err {err} s {s}");
            }
        }
    }

    #[test]
    fn grids_lqq_vs_qoq_have_same_step() {
        // Same group → same scale on both schemes (both derive s from
        // the group range with the same rounding).
        let group = [-100i8, -7, 33, 90];
        let (lqq, _) = crate::lqq::LqqGroup::quantize(&group);
        let (qoq, _) = QoqGroup::quantize(&group);
        assert_eq!(lqq.s_u8, qoq.s_u8);
    }
}
