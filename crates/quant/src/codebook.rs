//! CodeGEMM-style codebook-centric W4A8 backend: weights are sliced
//! into length-[`CB_DIM`] sub-vectors, each replaced by an 8-bit index
//! into a shared 256-entry codebook of INT8 sub-vectors trained at
//! quantization time (deterministic k-means over the level-1 INT8
//! weights).
//!
//! The kernel-time representation is radically different from the
//! nibble backends: one `u32` word carries **four indices = 16
//! elements** (vs 8 elements for the UINT4 packings), so the effective
//! weight rate is 2 bits/element plus a 1 KiB codebook shared by the
//! whole matrix. Dequantization is a pure gather — each index expands
//! to four INT8 values by one codebook row copy, no arithmetic at all.
//!
//! Unlike the other backends this one is **not bit-exact** against the
//! SWAR reference: vector quantization is lossy beyond the level-1
//! grid, so its contract is SQNR-bounded output (see the quant-error
//! smoke tests and the `bit_exact: false` flag in its
//! [`BackendCost`]). Everything downstream — pipelines, pool,
//! serving — still works unchanged because accumulation stays exact
//! INT8×INT8→i32 over the *reconstructed* weights; only the
//! reconstruction itself approximates.

use std::sync::Arc;

use crate::backend::{BackendCost, BackendId, KernelBackend, PackedWeights, TileDequant};
use crate::level1::{quantize_per_channel_i8, PROTECTIVE_MAX};
use crate::mat::Mat;

/// Sub-vector length: each codebook entry covers 4 consecutive
/// K-elements of one row.
pub const CB_DIM: usize = 4;
/// Codebook entries (one u8 index each).
pub const CB_SIZE: usize = 256;
/// Elements one packed `u32` word reconstructs (4 indices × [`CB_DIM`]).
pub const CB_ELEMS_PER_WORD: usize = 16;

/// K-means training caps: sample at most this many sub-vectors
/// (strided, deterministic) and run a fixed iteration count, so pack
/// time stays bounded and bit-reproducible on any matrix size.
const KMEANS_SAMPLES: usize = 2048;
const KMEANS_ITERS: usize = 8;

/// Squared L2 distance between a sub-vector and a codebook entry.
#[inline]
fn dist2(v: &[i8], c: &[i8]) -> i32 {
    let mut d = 0i32;
    for i in 0..CB_DIM {
        let e = i32::from(v[i]) - i32::from(c[i]);
        d += e * e;
    }
    d
}

/// Index of the nearest codebook entry (ties break to the lowest
/// index — assignment is fully deterministic).
#[inline]
fn nearest(v: &[i8], codebook: &[i8]) -> u8 {
    let mut best = 0usize;
    let mut best_d = i32::MAX;
    for c in 0..CB_SIZE {
        let d = dist2(v, &codebook[c * CB_DIM..(c + 1) * CB_DIM]);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best as u8
}

/// Deterministic k-means over INT8 sub-vectors: strided sample cap,
/// strided initial centroids, fixed iterations, centroids rounded back
/// to the protective INT8 range. Returns the flattened
/// `CB_SIZE × CB_DIM` codebook.
fn train_codebook(subvectors: &[i8]) -> Vec<i8> {
    let total = subvectors.len() / CB_DIM;
    assert!(total > 0, "cannot train a codebook on an empty matrix");
    let stride = (total / KMEANS_SAMPLES).max(1);
    let samples: Vec<usize> = (0..total).step_by(stride).collect();
    // Strided init across the sample set (wraps if samples < CB_SIZE).
    let mut codebook = vec![0i8; CB_SIZE * CB_DIM];
    for c in 0..CB_SIZE {
        let s = samples[(c * samples.len()) / CB_SIZE];
        codebook[c * CB_DIM..(c + 1) * CB_DIM]
            .copy_from_slice(&subvectors[s * CB_DIM..(s + 1) * CB_DIM]);
    }
    let mut sums = vec![0i64; CB_SIZE * CB_DIM];
    let mut counts = vec![0u32; CB_SIZE];
    for _ in 0..KMEANS_ITERS {
        sums.fill(0);
        counts.fill(0);
        for &s in &samples {
            let v = &subvectors[s * CB_DIM..(s + 1) * CB_DIM];
            let c = nearest(v, &codebook) as usize;
            counts[c] += 1;
            for i in 0..CB_DIM {
                sums[c * CB_DIM + i] += i64::from(v[i]);
            }
        }
        for c in 0..CB_SIZE {
            if counts[c] == 0 {
                continue; // empty cluster keeps its old centroid
            }
            for i in 0..CB_DIM {
                let mean = sums[c * CB_DIM + i] as f64 / f64::from(counts[c]);
                codebook[c * CB_DIM + i] = (mean.round() as i32)
                    .clamp(i32::from(-PROTECTIVE_MAX), i32::from(PROTECTIVE_MAX))
                    as i8;
            }
        }
    }
    codebook
}

/// Expand packed index words through the codebook: byte `b` of a word
/// (little-endian) indexes the entry reconstructing elements
/// `b·CB_DIM .. (b+1)·CB_DIM` of that word's 16-element span.
#[inline]
fn dequant_words_codebook(words: &[u32], codebook: &[i8], out: &mut [i8]) {
    debug_assert_eq!(words.len() * CB_ELEMS_PER_WORD, out.len());
    for (w, chunk) in words.iter().zip(out.chunks_exact_mut(CB_ELEMS_PER_WORD)) {
        for b in 0..4 {
            let idx = ((w >> (8 * b)) & 0xFF) as usize;
            chunk[b * CB_DIM..(b + 1) * CB_DIM]
                .copy_from_slice(&codebook[idx * CB_DIM..(idx + 1) * CB_DIM]);
        }
    }
}

/// Codebook-quantized W4A8 weights: per-channel level-1 scales, a
/// shared `Arc`'d codebook, and one index word per 16 elements.
#[derive(Debug, Clone)]
pub struct PackedCodebookLinear {
    /// Output channels.
    pub n: usize,
    /// Reduction dim (multiple of 16).
    pub k: usize,
    /// Group size along K (multiple of 16; scale-free here, kept so
    /// kernels tile identically across backends).
    pub group: usize,
    /// Index words, `n × k/16` row-major, four u8 indices per word.
    words: Vec<u32>,
    /// Shared `CB_SIZE × CB_DIM` codebook (cloned into tile recipes by
    /// reference count, not by copy).
    codebook: Arc<[i8]>,
    /// Level-1 per-channel scales (length `n`).
    pub channel_scales: Vec<f32>,
}

impl PackedCodebookLinear {
    /// Words per row of the index stream.
    #[must_use]
    pub fn words_per_row(&self) -> usize {
        self.k / CB_ELEMS_PER_WORD
    }

    /// The shared codebook (flattened `CB_SIZE × CB_DIM`).
    #[must_use]
    pub fn codebook(&self) -> &[i8] {
        &self.codebook
    }

    /// Quantize FP weights: level-1 per-channel INT8, then vector
    /// quantization of every length-[`CB_DIM`] sub-vector against a
    /// freshly trained codebook.
    #[must_use]
    pub fn quantize(w: &Mat<f32>, group: usize) -> Self {
        let (n, k) = (w.rows(), w.cols());
        assert!(k > 0 && n > 0, "empty weight matrix");
        assert_eq!(
            k % CB_ELEMS_PER_WORD,
            0,
            "K must be a multiple of {CB_ELEMS_PER_WORD}"
        );
        assert_eq!(
            group % CB_ELEMS_PER_WORD,
            0,
            "group must be a multiple of {CB_ELEMS_PER_WORD}"
        );
        assert_eq!(k % group, 0, "group must divide K");
        let l1 = quantize_per_channel_i8(w);
        let flat = l1.q.as_slice();
        let codebook = train_codebook(flat);
        let mut words = Vec::with_capacity(n * k / CB_ELEMS_PER_WORD);
        for row in flat.chunks_exact(k) {
            for span in row.chunks_exact(CB_ELEMS_PER_WORD) {
                let mut bytes = [0u8; 4];
                for (b, sub) in span.chunks_exact(CB_DIM).enumerate() {
                    bytes[b] = nearest(sub, &codebook);
                }
                words.push(u32::from_le_bytes(bytes));
            }
        }
        Self {
            n,
            k,
            group,
            words,
            codebook: Arc::from(codebook),
            channel_scales: l1.scales.iter().map(|s| s.scale).collect(),
        }
    }

    /// Reconstruct the full FP32 weight matrix (error-measurement
    /// reference, not a kernel path).
    #[must_use]
    pub fn dequantize(&self) -> Mat<f32> {
        let mut row_buf = vec![0i8; self.k];
        let mut out = Mat::zeros(self.n, self.k);
        for r in 0..self.n {
            let wpr = self.words_per_row();
            dequant_words_codebook(
                &self.words[r * wpr..(r + 1) * wpr],
                &self.codebook,
                &mut row_buf,
            );
            let s = self.channel_scales[r];
            for (c, &q) in row_buf.iter().enumerate() {
                out.set(r, c, f32::from(q) * s);
            }
        }
        out
    }
}

impl PackedWeights for PackedCodebookLinear {
    fn backend(&self) -> BackendId {
        BackendId::Codebook
    }

    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn group(&self) -> usize {
        self.group
    }

    fn channel_scales(&self) -> &[f32] {
        &self.channel_scales
    }

    fn rows_words(&self, r0: usize, r1: usize) -> &[u32] {
        assert!(r0 <= r1 && r1 <= self.n);
        let wpr = self.words_per_row();
        &self.words[r0 * wpr..r1 * wpr]
    }

    fn dequant_row_group(&self, row: usize, g: usize, out: &mut [i8]) {
        let wpr = self.words_per_row();
        let wpg = self.group / CB_ELEMS_PER_WORD;
        let off = row * wpr + g * wpg;
        dequant_words_codebook(&self.words[off..off + wpg], &self.codebook, out);
    }

    fn tile_dequant(&self, j0: usize, j1: usize) -> Box<dyn TileDequant> {
        Box::new(CodebookTile {
            k: self.k,
            group: self.group,
            codebook: Arc::clone(&self.codebook),
            channel_scales: self.channel_scales[j0..j1].to_vec(),
        })
    }

    fn weight_bytes(&self) -> usize {
        self.words.len() * 4 + self.codebook.len() + self.channel_scales.len() * 4
    }
}

/// Owned codebook tile recipe: an `Arc` clone of the shared codebook
/// plus the tile's channel scales.
struct CodebookTile {
    k: usize,
    group: usize,
    codebook: Arc<[i8]>,
    channel_scales: Vec<f32>,
}

impl TileDequant for CodebookTile {
    fn k(&self) -> usize {
        self.k
    }

    fn group(&self) -> usize {
        self.group
    }

    fn channel_scales(&self) -> &[f32] {
        &self.channel_scales
    }

    fn dequant_group(&self, words: &[u32], j_rel: usize, g: usize, out: &mut [i8]) {
        let wpr = self.k / CB_ELEMS_PER_WORD;
        let wpg = self.group / CB_ELEMS_PER_WORD;
        let off = j_rel * wpr + g * wpg;
        dequant_words_codebook(&words[off..off + wpg], &self.codebook, out);
    }
}

/// The CodeGEMM-style backend registry entry.
pub struct CodebookGemmBackend;

impl KernelBackend for CodebookGemmBackend {
    fn id(&self) -> BackendId {
        BackendId::Codebook
    }

    fn name(&self) -> &'static str {
        "Codebook GEMM (shared i8 sub-vector codebook)"
    }

    fn cost(&self) -> BackendCost {
        BackendCost {
            // One extract + one 4-byte gather per sub-vector: ~0.5
            // instructions per element, no arithmetic.
            alpha: 0.5,
            weight_bytes_per_elem: 0.25,
            overlap_dq: true,
            bit_exact: false,
        }
    }

    fn pack(&self, w: &Mat<f32>, group: usize) -> Arc<dyn PackedWeights> {
        Arc::new(PackedCodebookLinear::quantize(w, group))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::error_stats;

    fn weights(n: usize, k: usize) -> Mat<f32> {
        Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.11).sin() * 2.0)
    }

    #[test]
    fn quantize_is_deterministic() {
        let w = weights(8, 128);
        let a = PackedCodebookLinear::quantize(&w, 64);
        let b = PackedCodebookLinear::quantize(&w, 64);
        assert_eq!(a.words, b.words);
        assert_eq!(a.codebook(), b.codebook());
    }

    #[test]
    fn row_group_and_tile_paths_agree() {
        let w = weights(12, 96);
        let p = PackedCodebookLinear::quantize(&w, 32);
        let tile = p.tile_dequant(2, 10);
        let words = PackedWeights::rows_words(&p, 2, 10).to_vec();
        let mut via_tile = vec![0i8; 32];
        let mut via_row = vec![0i8; 32];
        for j in 2..10 {
            for g in 0..3 {
                tile.dequant_group(&words, j - 2, g, &mut via_tile);
                p.dequant_row_group(j, g, &mut via_row);
                assert_eq!(via_tile, via_row, "row {j} group {g}");
            }
        }
    }

    #[test]
    fn reconstruction_is_sqnr_bounded() {
        // Smooth weights: vector quantization must stay well above the
        // conservative floor (exact SQNR depends on the data).
        let w = weights(32, 256);
        let p = PackedCodebookLinear::quantize(&w, 64);
        let stats = error_stats(&w, &p.dequantize());
        assert!(stats.sqnr_db > 5.0, "SQNR {:.2} dB too low", stats.sqnr_db);
        assert!(stats.cosine > 0.8, "cosine {:.3} too low", stats.cosine);
    }

    #[test]
    fn weight_rate_is_quarter_byte_per_element() {
        let w = weights(64, 512);
        let p = PackedCodebookLinear::quantize(&w, 64);
        let payload = 64 * 512 / 4; // one byte per 4-element sub-vector
        assert_eq!(
            PackedWeights::weight_bytes(&p),
            payload + CB_SIZE * CB_DIM + 64 * 4
        );
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn rejects_k_not_multiple_of_16() {
        let w = weights(4, 24);
        let _ = PackedCodebookLinear::quantize(&w, 8);
    }
}
