//! Level-1 quantization: per-channel symmetric FP → INT8 with the
//! protective range.
//!
//! Following QServe (adopted by LiquidQuant, Section 4), the first level
//! maps each output channel (a row of the `N×K` weight matrix) to INT8
//! using a symmetric per-channel scale, but clamps to the *protective
//! quantization range* `[-119, 119]` instead of `[-127, 127]`. The
//! narrower range guarantees that the second-level scale satisfies
//! `s_u8 = ⌊(max−min)/15⌉ ≤ ⌊238/15⌉ = 16`, which is exactly what makes
//! the one-`IMAD` dequantization overflow-free (`15 × 16 = 240 ≤ 255`).

use crate::mat::Mat;

/// The protective bound: level-1 INT8 values live in `[-119, 119]`.
pub const PROTECTIVE_MAX: i8 = 119;

/// Per-channel symmetric scale from level-1 quantization.
///
/// Dequantization multiplies by `scale` in the GEMM epilogue
/// (`W ≈ Q_i8 · scale`), so its cost is amortised over the whole K
/// reduction and is negligible (paper, Section 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelScale {
    /// `s₁ = max|W_row| / 119`.
    pub scale: f32,
}

/// Result of level-1 quantization of an `N×K` weight matrix.
#[derive(Debug, Clone)]
pub struct Level1 {
    /// INT8 weights, same shape as the input, each row in `[-119, 119]`.
    pub q: Mat<i8>,
    /// One scale per row (output channel).
    pub scales: Vec<ChannelScale>,
}

/// Quantize one channel (row) to INT8 in the protective range.
///
/// Returns the scale; writes quantized values into `out`.
pub fn quantize_channel(row: &[f32], out: &mut [i8]) -> ChannelScale {
    assert_eq!(row.len(), out.len());
    let absmax = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if absmax == 0.0 {
        out.fill(0);
        return ChannelScale { scale: 0.0 };
    }
    let scale = absmax / f32::from(PROTECTIVE_MAX);
    let inv = 1.0 / scale;
    for (o, &v) in out.iter_mut().zip(row.iter()) {
        let q = (v * inv).round();
        *o = q.clamp(f32::from(-PROTECTIVE_MAX), f32::from(PROTECTIVE_MAX)) as i8;
    }
    ChannelScale { scale }
}

/// Quantize a full `N×K` weight matrix per-channel to INT8.
#[must_use]
pub fn quantize_per_channel_i8(w: &Mat<f32>) -> Level1 {
    let mut q = Mat::zeros(w.rows(), w.cols());
    let mut scales = Vec::with_capacity(w.rows());
    for r in 0..w.rows() {
        let s = quantize_channel(w.row(r), q.row_mut(r));
        scales.push(s);
    }
    Level1 { q, scales }
}

impl Level1 {
    /// Dequantize back to f32 (reference for error measurement).
    #[must_use]
    pub fn dequantize(&self) -> Mat<f32> {
        Mat::from_fn(self.q.rows(), self.q.cols(), |r, c| {
            f32::from(*self.q.get(r, c)) * self.scales[r].scale
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protective_range_is_respected() {
        let row = vec![-3.0f32, -1.5, 0.0, 1.5, 3.0];
        let mut out = vec![0i8; 5];
        let s = quantize_channel(&row, &mut out);
        assert_eq!(out, vec![-119, -60, 0, 60, 119]);
        assert!((s.scale - 3.0 / 119.0).abs() < 1e-7);
    }

    #[test]
    fn extreme_values_clamp_to_protective_bound() {
        // Even with rounding at the edge, values never exceed ±119.
        let row: Vec<f32> = (0..1000).map(|i| (i as f32 - 500.0) * 0.137).collect();
        let mut out = vec![0i8; row.len()];
        let _ = quantize_channel(&row, &mut out);
        assert!(out
            .iter()
            .all(|&q| (-PROTECTIVE_MAX..=PROTECTIVE_MAX).contains(&q)));
        assert!(out.contains(&PROTECTIVE_MAX) || out.contains(&-PROTECTIVE_MAX));
    }

    #[test]
    fn zero_channel_gets_zero_scale() {
        let row = vec![0.0f32; 8];
        let mut out = vec![1i8; 8];
        let s = quantize_channel(&row, &mut out);
        assert_eq!(out, vec![0; 8]);
        assert_eq!(s.scale, 0.0);
    }

    #[test]
    fn per_channel_scales_are_independent() {
        let w = Mat::from_vec(2, 2, vec![1.0, -1.0, 100.0, -25.0]);
        let l1 = quantize_per_channel_i8(&w);
        assert_eq!(l1.q.row(0), &[119, -119]);
        assert_eq!(l1.q.row(1), &[119, -30]);
        assert!(l1.scales[1].scale > l1.scales[0].scale);
    }

    #[test]
    fn roundtrip_error_bounded_by_half_step() {
        let w = Mat::from_fn(4, 64, |r, c| ((r * 64 + c) as f32).sin() * 5.0);
        let l1 = quantize_per_channel_i8(&w);
        let back = l1.dequantize();
        for r in 0..w.rows() {
            let half_step = l1.scales[r].scale / 2.0 + 1e-6;
            for c in 0..w.cols() {
                assert!(
                    (back.get(r, c) - w.get(r, c)).abs() <= half_step,
                    "({r},{c}): {} vs {}",
                    back.get(r, c),
                    w.get(r, c)
                );
            }
        }
    }
}
