//! FP8 E4M3 codec (OCP 8-bit floating point), used by the TRT-FP8
//! baseline kernel.
//!
//! Format: 1 sign, 4 exponent (bias 7), 3 mantissa bits. E4M3 has **no
//! infinities**; the all-ones exponent with all-ones mantissa is NaN and
//! every other code is finite, giving a max normal of ±448. Conversion
//! from f32 saturates (the convention used by inference runtimes).
//!
//! Encoding is implemented as exact round-to-nearest-even over the
//! decoded value table, which is trivially correct and fast enough for
//! offline weight conversion; decoding in the GEMM hot loop goes through
//! a 256-entry lookup table ([`E4M3_DECODE`]-style via [`decode_lut`]).

/// Maximum finite E4M3 magnitude.
pub const E4M3_MAX: f32 = 448.0;
/// Canonical NaN code (positive).
pub const E4M3_NAN: u8 = 0x7F;

/// Decode one E4M3 code to f32. Total function: every code maps to a
/// finite value except `0x7F`/`0xFF` (NaN).
#[must_use]
pub fn e4m3_to_f32(code: u8) -> f32 {
    let sign = if code & 0x80 != 0 { -1.0f32 } else { 1.0 };
    let exp = (code >> 3) & 0xF;
    let mant = code & 0x7;
    if exp == 0xF && mant == 0x7 {
        return f32::NAN;
    }
    let v = if exp == 0 {
        // Subnormal: mant/8 × 2⁻⁶
        (f32::from(mant) / 8.0) * 2f32.powi(-6)
    } else {
        (1.0 + f32::from(mant) / 8.0) * 2f32.powi(i32::from(exp) - 7)
    };
    sign * v
}

/// Encode an f32 to E4M3 with round-to-nearest-even and saturation.
#[must_use]
pub fn f32_to_e4m3(x: f32) -> u8 {
    let sign = if x.is_sign_negative() { 0x80u8 } else { 0 };
    if x.is_nan() {
        return sign | E4M3_NAN;
    }
    let ax = x.abs();
    if ax >= E4M3_MAX {
        return sign | 0x7E; // saturate to ±448
    }
    // Positive codes 0x00..=0x7E decode monotonically; binary-search the
    // bracketing pair and round to nearest, ties to even code.
    let (mut lo, mut hi) = (0u8, 0x7Eu8);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if e4m3_to_f32(mid) <= ax {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let (vl, vh) = (e4m3_to_f32(lo), e4m3_to_f32(hi));
    let code = if ax - vl < vh - ax {
        lo
    } else if ax - vl > vh - ax {
        hi
    } else if lo & 1 == 0 {
        lo
    } else {
        hi
    };
    sign | code
}

/// Build the 256-entry decode lookup table for hot-loop use.
#[must_use]
pub fn decode_lut() -> [f32; 256] {
    let mut lut = [0.0f32; 256];
    for (i, slot) in lut.iter_mut().enumerate() {
        *slot = e4m3_to_f32(i as u8);
    }
    lut
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_known_points() {
        assert_eq!(e4m3_to_f32(0x00), 0.0);
        assert_eq!(e4m3_to_f32(0x80), -0.0);
        // Smallest subnormal: 2^-9.
        assert_eq!(e4m3_to_f32(0x01), 2f32.powi(-9));
        // 1.0 = exp 7 (biased), mant 0 → code 0b0_0111_000 = 0x38.
        assert_eq!(e4m3_to_f32(0x38), 1.0);
        // Max normal 448 = (1 + 6/8) × 2^8 → code 0x7E.
        assert_eq!(e4m3_to_f32(0x7E), 448.0);
        assert!(e4m3_to_f32(0x7F).is_nan());
        assert!(e4m3_to_f32(0xFF).is_nan());
        assert_eq!(e4m3_to_f32(0xFE), -448.0);
    }

    #[test]
    fn decode_is_monotone_on_positive_codes() {
        for c in 0..0x7Eu8 {
            assert!(
                e4m3_to_f32(c) < e4m3_to_f32(c + 1),
                "codes {c:#x} and {:#x} not increasing",
                c + 1
            );
        }
    }

    #[test]
    fn encode_roundtrips_every_finite_code() {
        for c in 0..=255u8 {
            let v = e4m3_to_f32(c);
            if v.is_nan() {
                continue;
            }
            let back = f32_to_e4m3(v);
            // -0.0 and +0.0 both legal for zero; otherwise exact.
            if v == 0.0 {
                assert_eq!(back & 0x7F, 0);
            } else {
                assert_eq!(back, c, "code {c:#04x} value {v}");
            }
        }
    }

    #[test]
    fn encode_saturates_and_propagates_nan() {
        assert_eq!(f32_to_e4m3(1e9), 0x7E);
        assert_eq!(f32_to_e4m3(-1e9), 0xFE);
        assert_eq!(f32_to_e4m3(f32::INFINITY), 0x7E);
        assert_eq!(f32_to_e4m3(f32::NAN) & 0x7F, E4M3_NAN);
    }

    #[test]
    fn encode_rounds_to_nearest() {
        // Between 1.0 (0x38) and 1.125 (0x39): 1.05 → 1.0; 1.08 → 1.125.
        assert_eq!(f32_to_e4m3(1.05), 0x38);
        assert_eq!(f32_to_e4m3(1.08), 0x39);
        // Exact tie 1.0625 → even code 0x38.
        assert_eq!(f32_to_e4m3(1.0625), 0x38);
    }

    #[test]
    fn relative_error_bounded_for_normals() {
        // E4M3 normals carry 3 mantissa bits → rel. error ≤ 2^-4.
        let mut x = 0.02f32;
        while x < 440.0 {
            let v = e4m3_to_f32(f32_to_e4m3(x));
            assert!(((v - x) / x).abs() <= 1.0 / 16.0 + 1e-6, "x={x} v={v}");
            x *= 1.37;
        }
    }

    #[test]
    fn lut_matches_decoder() {
        let lut = decode_lut();
        for c in 0..=255u8 {
            let d = e4m3_to_f32(c);
            if d.is_nan() {
                assert!(lut[c as usize].is_nan());
            } else {
                assert_eq!(lut[c as usize], d);
            }
        }
    }
}
