//! UINT4 → FP16 "magic number" conversion — the dequantization trick
//! behind the TRT-W4A16 baseline (AWQ/FasterTransformer lineage).
//!
//! The binary16 pattern of 1024.0 is `0x6400`, and because 1024 = 2¹⁰
//! with a 10-bit mantissa, the mantissa ULP is exactly 1.0: OR-ing a
//! 4-bit integer `v` into the low mantissa bits yields the bit pattern
//! of `1024 + v`. One packed `LOP3` builds two such halves in a 32-bit
//! register and one packed half-precision subtract (`HSUB2`) of 1024
//! finishes the conversion — 2 instructions per 2 elements before the
//! group scale, which is why the cost model gives TRT-W4A16 α ≈ 1.5
//! (conversion + scale-multiply + addressing).
//!
//! This module implements the trick bit-exactly over the [`F16`] codec
//! and audits its instruction count, giving the W4A16 baseline the same
//! evidence standard as the W4A8 paths.

use crate::fp16::F16;
use lq_swar::audit::CountingAlu;

/// binary16 bit pattern of 1024.0.
pub const MAGIC_F16: u16 = 0x6400;
/// Two copies of the magic in half2 layout.
pub const MAGIC_H2: u32 = 0x6400_6400;

/// Convert one UINT4 value to FP16 via the magic-number identity
/// (scalar reference).
#[must_use]
pub fn u4_to_f16_magic(v: u8) -> F16 {
    debug_assert!(v < 16);
    let biased = F16(MAGIC_F16 | u16::from(v));
    // 1024 + v and 1024 are both exactly representable; the subtraction
    // is exact for all v < 16.
    F16::from_f32(biased.to_f32() - 1024.0)
}

/// Register-level conversion: two UINT4 values (in the low nibbles of
/// the two 16-bit halves of `packed_halves`) to two FP16 values, with
/// the two instructions charged on `alu` (1 `LOP3` + 1 half2 subtract,
/// which issues on the CUDA-core FP pipe and is counted as one add).
#[must_use]
pub fn u4x2_to_f16x2_magic(alu: &mut CountingAlu, packed_halves: u32) -> (F16, F16) {
    debug_assert_eq!(packed_halves & !0x000F_000F, 0, "low nibbles only");
    let biased = alu.lop3(
        packed_halves,
        0x000F_000F,
        MAGIC_H2,
        lq_swar::ops::LOP3_AND_OR,
    );
    // Packed half2 subtract of 1024 from both lanes (one instruction on
    // hardware; modelled per-lane here).
    let _ = alu.add(0, 0); // charge the HSUB2
    let lo = F16((biased & 0xFFFF) as u16);
    let hi = F16((biased >> 16) as u16);
    (
        F16::from_f32(lo.to_f32() - 1024.0),
        F16::from_f32(hi.to_f32() - 1024.0),
    )
}

/// Instructions per 8 converted elements (4 × (LOP3 + HSUB2)), before
/// the per-group scale multiply.
pub const W4F16_CONVERT_COST_PER_8: u32 = 8;

/// Convert 8 UINT4 values (one value per array slot) and apply a group
/// scale, auditing the full instruction cost: 4 × (LOP3 + HSUB2) +
/// 4 × HMUL2 = 12 instructions per 8 elements (α = 1.5, the cost-model
/// value for TRT-W4A16).
#[must_use]
pub fn dequant8_w4f16(alu: &mut CountingAlu, vals: [u8; 8], scale: f32) -> [f32; 8] {
    let mut out = [0.0f32; 8];
    for pair in 0..4 {
        let lo = u32::from(vals[2 * pair]);
        let hi = u32::from(vals[2 * pair + 1]);
        let packed = lo | (hi << 16);
        let (a, b) = u4x2_to_f16x2_magic(alu, packed);
        // HMUL2 by the group scale (one packed instruction).
        let _ = alu.imad(0, 0, 0); // charge the HMUL2 on the FMA pipe
        out[2 * pair] = a.to_f32() * scale;
        out[2 * pair + 1] = b.to_f32() * scale;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magic_identity_holds_for_all_sixteen_codes() {
        for v in 0..16u8 {
            let f = u4_to_f16_magic(v);
            assert_eq!(f.to_f32(), f32::from(v), "code {v}");
        }
    }

    #[test]
    fn magic_bit_pattern_is_1024_plus_v() {
        for v in 0..16u16 {
            let biased = F16(MAGIC_F16 | v);
            assert_eq!(biased.to_f32(), 1024.0 + f32::from(v));
        }
    }

    #[test]
    fn register_path_matches_scalar_and_costs_two() {
        for (a, b) in [(0u8, 15u8), (7, 8), (3, 3), (15, 0)] {
            let mut alu = CountingAlu::new();
            let packed = u32::from(a) | (u32::from(b) << 16);
            let (fa, fb) = u4x2_to_f16x2_magic(&mut alu, packed);
            assert_eq!(alu.count().total(), 2);
            assert_eq!(fa.to_f32(), f32::from(a));
            assert_eq!(fb.to_f32(), f32::from(b));
        }
    }

    #[test]
    fn dequant8_matches_direct_and_costs_twelve() {
        let vals = [0u8, 1, 5, 7, 8, 11, 14, 15];
        let scale = 0.037f32;
        let mut alu = CountingAlu::new();
        let out = dequant8_w4f16(&mut alu, vals, scale);
        assert_eq!(alu.count().total(), 12, "α = 12/8 = 1.5");
        for (o, &v) in out.iter().zip(vals.iter()) {
            let want = f32::from(v) * scale;
            assert!((o - want).abs() < 1e-6, "{o} vs {want}");
        }
    }

    #[test]
    fn alpha_matches_cost_model_constant() {
        // The cost model (lq-sim) assigns TRT-W4A16 α = 1.5; the audited
        // conversion is exactly that.
        let mut alu = CountingAlu::new();
        let _ = dequant8_w4f16(&mut alu, [0; 8], 1.0);
        assert!((alu.count().alpha(8) - 1.5).abs() < 1e-12);
    }
}
