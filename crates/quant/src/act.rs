//! Per-token dynamic INT8 activation quantization (paper, Section 6).
//!
//! Following SmoothQuant, FP activations are mapped to INT8 on the fly
//! with one symmetric scale per token (row of `X`), after division by the
//! per-channel smooth scale. In the real system this is fused into the
//! preceding kernel; here it is a standalone step so the kernels receive
//! plain INT8 operands.

use crate::mat::Mat;

/// INT8 activations with per-token scales.
#[derive(Debug, Clone)]
pub struct QuantizedActivations {
    /// INT8 activation matrix, `M×K`.
    pub q: Mat<i8>,
    /// Per-token (per-row) scales: `x ≈ q · scale`.
    pub scales: Vec<f32>,
}

/// Quantize one token's activations symmetrically to INT8 `[-127, 127]`.
///
/// Returns the scale; writes codes into `out`.
pub fn quantize_token(x: &[f32], out: &mut [i8]) -> f32 {
    assert_eq!(x.len(), out.len());
    let absmax = x.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if absmax == 0.0 {
        out.fill(0);
        return 0.0;
    }
    let scale = absmax / 127.0;
    let inv = 1.0 / scale;
    for (o, &v) in out.iter_mut().zip(x.iter()) {
        *o = (v * inv).round().clamp(-127.0, 127.0) as i8;
    }
    scale
}

impl QuantizedActivations {
    /// Quantize an `M×K` activation matrix per token, optionally dividing
    /// by a per-channel smooth scale first (`x_j / smooth[j]`).
    #[must_use]
    pub fn quantize(x: &Mat<f32>, smooth: Option<&[f32]>) -> Self {
        if let Some(s) = smooth {
            assert_eq!(s.len(), x.cols(), "smooth scale length mismatch");
            assert!(s.iter().all(|&v| v > 0.0), "smooth scales must be positive");
        }
        let mut q = Mat::zeros(x.rows(), x.cols());
        let mut scales = Vec::with_capacity(x.rows());
        let mut tmp = vec![0.0f32; x.cols()];
        for r in 0..x.rows() {
            let row = x.row(r);
            let src: &[f32] = if let Some(s) = smooth {
                for ((t, &v), &sc) in tmp.iter_mut().zip(row.iter()).zip(s.iter()) {
                    *t = v / sc;
                }
                &tmp
            } else {
                row
            };
            scales.push(quantize_token(src, q.row_mut(r)));
        }
        Self { q, scales }
    }

    /// Dequantize back to f32 (reference).
    #[must_use]
    pub fn dequantize(&self) -> Mat<f32> {
        Mat::from_fn(self.q.rows(), self.q.cols(), |r, c| {
            f32::from(*self.q.get(r, c)) * self.scales[r]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_quantization_symmetric() {
        let x = [2.0f32, -1.0, 0.5, -2.0];
        let mut out = [0i8; 4];
        let s = quantize_token(&x, &mut out);
        assert_eq!(out, [127, -64, 32, -127]);
        assert!((s - 2.0 / 127.0).abs() < 1e-7);
    }

    #[test]
    fn zero_token_is_stable() {
        let mut out = [3i8; 4];
        let s = quantize_token(&[0.0; 4], &mut out);
        assert_eq!(s, 0.0);
        assert_eq!(out, [0; 4]);
    }

    #[test]
    fn per_token_scales_differ() {
        let x = Mat::from_vec(2, 2, vec![1.0, -1.0, 10.0, 5.0]);
        let qa = QuantizedActivations::quantize(&x, None);
        assert!(qa.scales[1] > qa.scales[0]);
        assert_eq!(qa.q.row(0), &[127, -127]);
        assert_eq!(qa.q.row(1), &[127, 64]);
    }

    #[test]
    fn smoothing_divides_before_quantization() {
        let x = Mat::from_vec(1, 2, vec![8.0, 1.0]);
        let smooth = vec![8.0, 1.0];
        let qa = QuantizedActivations::quantize(&x, Some(&smooth));
        // After smoothing both columns are 1.0 → equal codes.
        assert_eq!(qa.q.row(0), &[127, 127]);
    }

    #[test]
    fn roundtrip_error_bounded_by_half_step() {
        let x = Mat::from_fn(16, 64, |r, c| ((r * 64 + c) as f32 * 0.7).cos() * 3.0);
        let qa = QuantizedActivations::quantize(&x, None);
        let back = qa.dequantize();
        for r in 0..x.rows() {
            let tol = qa.scales[r] / 2.0 + 1e-6;
            for c in 0..x.cols() {
                assert!((back.get(r, c) - x.get(r, c)).abs() <= tol);
            }
        }
    }

    #[test]
    #[should_panic(expected = "smooth scales must be positive")]
    fn nonpositive_smooth_scale_panics() {
        let x = Mat::from_vec(1, 2, vec![1.0, 2.0]);
        let _ = QuantizedActivations::quantize(&x, Some(&[1.0, 0.0]));
    }
}
