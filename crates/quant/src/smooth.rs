//! SmoothQuant offline calibration (paper, Section 6).
//!
//! Activation outliers concentrate in a few channels; SmoothQuant
//! migrates difficulty from activations to weights through the
//! mathematically equivalent rewrite `Y = (X diag(s)⁻¹)(diag(s) W^T)`.
//! The per-channel smooth scale is
//!
//! ```text
//! s_j = max|X_j|^α / max|W_j|^(1−α)
//! ```
//!
//! and, following OutlierSuppression+, the migration strength α is
//! picked by a grid search minimising end-to-end quantization error on a
//! calibration batch.

use crate::act::QuantizedActivations;
use crate::level1::quantize_per_channel_i8;
use crate::mat::Mat;

/// Result of SmoothQuant calibration.
#[derive(Debug, Clone)]
pub struct SmoothScales {
    /// Per-input-channel scale `s_j` (length K). Weights are multiplied
    /// by `s_j`, activations divided.
    pub scales: Vec<f32>,
    /// The migration strength chosen by the grid search.
    pub alpha: f32,
    /// Quantization error (relative MSE of Ŷ vs FP Y) at the chosen α.
    pub error: f64,
}

/// Compute smooth scales for a fixed α.
///
/// `act_absmax[j] = max|X_j|` from calibration, `w_absmax[j] = max|W_j|`
/// over the column `j` of the `N×K` weight matrix.
#[must_use]
pub fn smooth_scales_for_alpha(act_absmax: &[f32], w_absmax: &[f32], alpha: f32) -> Vec<f32> {
    assert_eq!(act_absmax.len(), w_absmax.len());
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
    act_absmax
        .iter()
        .zip(w_absmax.iter())
        .map(|(&a, &w)| {
            let a = a.max(1e-5);
            let w = w.max(1e-5);
            (a.powf(alpha) / w.powf(1.0 - alpha)).max(1e-5)
        })
        .collect()
}

/// Apply smooth scales to a weight matrix (`W_j ← W_j · s_j` per column).
#[must_use]
pub fn smooth_weights(w: &Mat<f32>, scales: &[f32]) -> Mat<f32> {
    assert_eq!(scales.len(), w.cols());
    Mat::from_fn(w.rows(), w.cols(), |r, c| w.get(r, c) * scales[c])
}

/// Relative quantization error of the smoothed W8A8-style pipeline on a
/// calibration batch: quantize both operands, compute Ŷ, compare to FP.
///
/// Used as the grid-search objective; lower is better.
#[must_use]
pub fn pipeline_error(x: &Mat<f32>, w: &Mat<f32>, scales: &[f32]) -> f64 {
    let ws = smooth_weights(w, scales);
    let l1 = quantize_per_channel_i8(&ws);
    let qa = QuantizedActivations::quantize(x, Some(scales));
    // Reference FP output: Y = X W^T (M×N).
    let (m, k, n) = (x.rows(), x.cols(), w.rows());
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for i in 0..m {
        for j in 0..n {
            let mut y_fp = 0.0f64;
            let mut y_q = 0.0f64;
            let mut acc = 0i64;
            for l in 0..k {
                y_fp += f64::from(*x.get(i, l)) * f64::from(*w.get(j, l));
                acc += i64::from(*qa.q.get(i, l)) * i64::from(*l1.q.get(j, l));
            }
            y_q += acc as f64 * f64::from(qa.scales[i]) * f64::from(l1.scales[j].scale);
            let d = y_fp - y_q;
            num += d * d;
            den += y_fp * y_fp;
        }
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Grid-search α over `[0, 1]` (OutlierSuppression+-style) and return the
/// best smooth scales for the calibration pair `(X, W)`.
#[must_use]
pub fn calibrate(x: &Mat<f32>, w: &Mat<f32>, grid_points: usize) -> SmoothScales {
    assert!(grid_points >= 2, "need at least two grid points");
    assert_eq!(x.cols(), w.cols(), "X and W must share K");
    let act_absmax = x.col_abs_max();
    let w_absmax = w.col_abs_max(); // per input channel (column) of W
    let mut best: Option<SmoothScales> = None;
    for i in 0..grid_points {
        let alpha = i as f32 / (grid_points - 1) as f32;
        let scales = smooth_scales_for_alpha(&act_absmax, &w_absmax, alpha);
        let error = pipeline_error(x, w, &scales);
        if best.as_ref().is_none_or(|b| error < b.error) {
            best = Some(SmoothScales {
                scales,
                alpha,
                error,
            });
        }
    }
    best.expect("grid_points >= 2")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outlier_activations(m: usize, k: usize) -> Mat<f32> {
        // Smooth base signal with a 50x outlier channel — the regime
        // SmoothQuant exists for.
        Mat::from_fn(m, k, |r, c| {
            let base = ((r * k + c) as f32 * 0.13).sin();
            if c == 3 {
                base * 50.0
            } else {
                base
            }
        })
    }

    fn bland_weights(n: usize, k: usize) -> Mat<f32> {
        Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.07).cos())
    }

    #[test]
    fn scales_track_outlier_channels() {
        let x = outlier_activations(8, 16);
        let w = bland_weights(4, 16);
        let s = smooth_scales_for_alpha(&x.col_abs_max(), &w.col_abs_max(), 0.5);
        // The outlier channel must get a much larger smooth scale.
        let avg: f32 = s.iter().sum::<f32>() / s.len() as f32;
        assert!(s[3] > 3.0 * avg, "s[3]={} avg={avg}", s[3]);
    }

    #[test]
    fn alpha_zero_and_one_are_pure_endpoints() {
        let a = [4.0f32, 9.0];
        let w = [2.0f32, 3.0];
        let s0 = smooth_scales_for_alpha(&a, &w, 0.0);
        // α=0: s_j = 1 / w_j
        assert!((s0[0] - 0.5).abs() < 1e-6);
        let s1 = smooth_scales_for_alpha(&a, &w, 1.0);
        // α=1: s_j = a_j
        assert!((s1[0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn smoothing_reduces_quantization_error_with_outliers() {
        let x = outlier_activations(8, 16);
        let w = bland_weights(4, 16);
        let ones = vec![1.0f32; 16];
        let err_unsmoothed = pipeline_error(&x, &w, &ones);
        let cal = calibrate(&x, &w, 11);
        assert!(
            cal.error < err_unsmoothed,
            "calibrated {} !< unsmoothed {}",
            cal.error,
            err_unsmoothed
        );
        // And the search should pick a nontrivial α.
        assert!(cal.alpha > 0.0, "alpha={}", cal.alpha);
    }

    #[test]
    fn smooth_weights_is_columnwise_multiplication() {
        let w = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let ws = smooth_weights(&w, &[10.0, 100.0]);
        assert_eq!(ws.as_slice(), &[10.0, 200.0, 30.0, 400.0]);
    }

    #[test]
    fn calibrate_is_deterministic() {
        let x = outlier_activations(4, 8);
        let w = bland_weights(2, 8);
        let a = calibrate(&x, &w, 5);
        let b = calibrate(&x, &w, 5);
        assert_eq!(a.alpha, b.alpha);
        assert_eq!(a.scales, b.scales);
    }
}
