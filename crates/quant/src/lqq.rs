//! LiquidQuant (LQQ): shift-based INT8 → UINT4 quantization with
//! overflow-free two-instruction dequantization (paper, Section 4).
//!
//! ## Quantization (offline, Eq. 7)
//!
//! For each group of `g` consecutive level-1 INT8 weights:
//!
//! ```text
//! Q_u8 = Q_i8 − min(Q_i8)              (shift into the unsigned domain)
//! s_u8 = ⌊max(Q_u8) / 15⌉, clamped to [1, 16]
//! Q_u4 = ⌊Q_u8 / s_u8⌉, clamped to [0, 15]
//! ```
//!
//! The protective level-1 range `[-119, 119]` bounds
//! `max(Q_u8) ≤ 238`, hence `s_u8 ≤ 16`.
//!
//! ## Sweet dequantization (online, Eqs. 8–12)
//!
//! The naive `Q_u4·s_u8 + min(Q_i8)` mixes an unsigned product with a
//! possibly-negative constant and wraps (the paper's `225 + (−104)`
//! example). LQQ instead precomputes `a = 2⁷ + min(Q_i8)` (always in
//! `[9, 247]`, so a valid `u8`) and evaluates
//!
//! ```text
//! Q̂_i8 = (Q_u4 · s_u8 + a) ⊕ 0x80
//! ```
//!
//! entirely in the UINT8 domain. The proof obligations, all verified
//! exhaustively by the tests below:
//!
//! 1. `Q_u4·s_u8 ≤ 15·16 = 240` — the product never overflows a byte.
//! 2. `Q_u4·s_u8 + a ≤ max(Q_i8) + 8 + 128 ≤ 255` — the sum never
//!    overflows a byte (Eq. 11).
//! 3. Flipping the MSB (`⊕ 0x80`) adds 128 mod 2⁸, so the resulting bit
//!    pattern equals `Q_u4·s_u8 + min(Q_i8)` mod 2⁸ — which is the
//!    two's-complement pattern of the desired INT8 value (Eq. 9).
//!
//! On a packed register this is one `IMAD` + one `XOR` for four lanes.

use lq_swar::audit::CountingAlu;
use lq_swar::lanes::broadcast_u8;
use lq_swar::unpack::{unpack8_u4_to_2xu8x4, Unpacked8};

use crate::level1::PROTECTIVE_MAX;
use crate::mat::Mat;

/// The lane-replicated XOR mask that flips every lane's MSB.
pub const XOR_MASK: u32 = 0x8080_8080;

/// Per-group LQQ parameters (computed offline).
///
/// ```
/// use lq_quant::lqq::LqqGroup;
/// // Quantize one group of level-1 INT8 weights to UINT4 codes...
/// let (params, codes) = LqqGroup::quantize(&[-100, -7, 33, 90]);
/// assert!(params.s_u8 <= 16);
/// // ...and recover them with the overflow-free sweet dequantization.
/// for (&orig, &code) in [-100i8, -7, 33, 90].iter().zip(codes.iter()) {
///     let back = params.dequant_sweet(code);
///     assert!((i16::from(back) - i16::from(orig)).abs() <= i16::from(params.s_u8));
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LqqGroup {
    /// Integer second-level scale `s_u8 ∈ [1, 16]`.
    pub s_u8: u8,
    /// Group minimum of the level-1 INT8 values.
    pub min_i8: i8,
}

impl LqqGroup {
    /// The precomputed additive constant `a = 2⁷ + min(Q_i8)`.
    ///
    /// Always representable as `u8`: `min ∈ [-119, 119] ⇒ a ∈ [9, 247]`.
    #[inline]
    #[must_use]
    pub fn offset_a(self) -> u8 {
        (128i16 + i16::from(self.min_i8)) as u8
    }

    /// Quantize one group of level-1 INT8 values to UINT4.
    ///
    /// Panics (debug) if any input is outside the protective range.
    #[must_use]
    pub fn quantize(group: &[i8]) -> (Self, Vec<u8>) {
        assert!(!group.is_empty(), "empty quantization group");
        debug_assert!(
            group
                .iter()
                .all(|&q| (-PROTECTIVE_MAX..=PROTECTIVE_MAX).contains(&q)),
            "level-1 value outside protective range"
        );
        let min = *group.iter().min().expect("non-empty");
        let max = *group.iter().max().expect("non-empty");
        let range = i16::from(max) - i16::from(min); // ≤ 238
        let s = (((range as f32) / 15.0).round() as i16).clamp(1, 16) as u8;
        let q_u4 = group
            .iter()
            .map(|&q| {
                let u8v = (i16::from(q) - i16::from(min)) as f32;
                ((u8v / f32::from(s)).round() as i16).clamp(0, 15) as u8
            })
            .collect();
        (
            Self {
                s_u8: s,
                min_i8: min,
            },
            q_u4,
        )
    }

    /// Scalar reference dequantization: `Q_u4·s + min`, computed in i16.
    #[inline]
    #[must_use]
    pub fn dequant_scalar(self, q_u4: u8) -> i8 {
        debug_assert!(q_u4 < 16);
        let v = i16::from(q_u4) * i16::from(self.s_u8) + i16::from(self.min_i8);
        debug_assert!((-128..=127).contains(&v), "dequant out of i8 range: {v}");
        v as i8
    }

    /// Sweet dequantization of a single element, in pure u8 arithmetic.
    ///
    /// Every intermediate stays in `[0, 255]`; the `debug_assert`s are
    /// the paper's overflow-freedom proof checked at run time.
    #[inline]
    #[must_use]
    pub fn dequant_sweet(self, q_u4: u8) -> i8 {
        let prod = q_u4 * self.s_u8; // claim 1: ≤ 240, no u8 overflow
        let (sum, carry) = prod.overflowing_add(self.offset_a());
        debug_assert!(!carry, "sweet dequant sum overflowed u8");
        (sum ^ 0x80) as i8
    }

    /// Register-level dequantization of 8 packed UINT4 elements.
    ///
    /// Cost: 3 instructions (unpack) + 2 × (`IMAD` + `XOR`) = **7
    /// instructions per 8 elements** (α = 0.875), charged on `alu`.
    /// Lane `k` of `lo`/`hi` holds the INT8 bit pattern of packed
    /// elements `2k` / `2k+1`.
    #[inline]
    #[must_use]
    pub fn dequant_packed8(self, alu: &mut CountingAlu, packed: u32) -> Unpacked8 {
        let u = unpack8_u4_to_2xu8x4(alu, packed);
        let s = u32::from(self.s_u8);
        let a = broadcast_u8(self.offset_a());
        let lo_prod = alu.imad(u.lo, s, a);
        let lo = alu.xor(lo_prod, XOR_MASK);
        let hi_prod = alu.imad(u.hi, s, a);
        let hi = alu.xor(hi_prod, XOR_MASK);
        Unpacked8 { lo, hi }
    }

    /// Dequantize 8 packed elements back to original element order
    /// (reference convenience; kernels keep the interleaved order and
    /// compensate in the weight layout instead).
    #[must_use]
    pub fn dequant8_ordered(self, alu: &mut CountingAlu, packed: u32) -> [i8; 8] {
        let r = self.dequant_packed8(alu, packed);
        let lo = r.lo.to_le_bytes();
        let hi = r.hi.to_le_bytes();
        let mut out = [0i8; 8];
        for k in 0..4 {
            out[2 * k] = lo[k] as i8;
            out[2 * k + 1] = hi[k] as i8;
        }
        out
    }
}

/// A level-1 INT8 tensor quantized group-wise to UINT4 with LQQ.
///
/// `values` stores one UINT4 value per element (unpacked, row-major);
/// the bit-packed kernel formats live in `lq-layout`.
#[derive(Debug, Clone)]
pub struct LqqTensor {
    rows: usize,
    cols: usize,
    group: usize,
    /// UINT4 values, row-major, one byte each.
    pub values: Vec<u8>,
    /// Group parameters, `rows × ceil(cols/group)`, row-major.
    pub groups: Vec<LqqGroup>,
}

impl LqqTensor {
    /// Quantize an `N×K` level-1 INT8 matrix with groups of `group`
    /// along K. `cols` must be a multiple of `group`.
    #[must_use]
    pub fn quantize(q_i8: &Mat<i8>, group: usize) -> Self {
        assert!(group > 0, "group size must be positive");
        assert_eq!(
            q_i8.cols() % group,
            0,
            "K={} not a multiple of group size {}",
            q_i8.cols(),
            group
        );
        let gpr = q_i8.cols() / group;
        let mut values = Vec::with_capacity(q_i8.len());
        let mut groups = Vec::with_capacity(q_i8.rows() * gpr);
        for r in 0..q_i8.rows() {
            let row = q_i8.row(r);
            for g in 0..gpr {
                let (params, q_u4) = LqqGroup::quantize(&row[g * group..(g + 1) * group]);
                groups.push(params);
                values.extend_from_slice(&q_u4);
            }
        }
        Self {
            rows: q_i8.rows(),
            cols: q_i8.cols(),
            group,
            values,
            groups,
        }
    }

    /// Rows (output channels, N).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns (reduction dim, K).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Group size along K.
    #[must_use]
    pub fn group(&self) -> usize {
        self.group
    }

    /// Groups per row.
    #[must_use]
    pub fn groups_per_row(&self) -> usize {
        self.cols / self.group
    }

    /// Group parameters for `(row, k)`.
    #[inline]
    #[must_use]
    pub fn group_at(&self, row: usize, k: usize) -> LqqGroup {
        self.groups[row * self.groups_per_row() + k / self.group]
    }

    /// UINT4 value at `(row, k)`.
    #[inline]
    #[must_use]
    pub fn value_at(&self, row: usize, k: usize) -> u8 {
        self.values[row * self.cols + k]
    }

    /// Dequantize the whole tensor back to INT8 (scalar reference path).
    #[must_use]
    pub fn dequantize(&self) -> Mat<i8> {
        Mat::from_fn(self.rows, self.cols, |r, k| {
            self.group_at(r, k).dequant_scalar(self.value_at(r, k))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All (min, max) pairs in the protective range, all 16 u4 codes:
    /// the sweet path must equal the scalar reference bit-for-bit.
    #[test]
    fn sweet_equals_scalar_exhaustive() {
        for min in -PROTECTIVE_MAX..=PROTECTIVE_MAX {
            for max in min..=PROTECTIVE_MAX {
                let range = i16::from(max) - i16::from(min);
                let s = (((range as f32) / 15.0).round() as i16).clamp(1, 16) as u8;
                let g = LqqGroup {
                    s_u8: s,
                    min_i8: min,
                };
                for q in 0..16u8 {
                    // Only codes that can arise from quantization: the
                    // dequantized value must not exceed max + s/2.
                    let v = i16::from(q) * i16::from(s) + i16::from(min);
                    if v > i16::from(max) + i16::from(s / 2) {
                        continue;
                    }
                    assert_eq!(
                        g.dequant_sweet(q),
                        g.dequant_scalar(q),
                        "min={min} max={max} s={s} q={q}"
                    );
                }
            }
        }
    }

    /// The paper's worked example: s=15, min=-104, q=15 → 121.
    #[test]
    fn paper_worked_example() {
        let g = LqqGroup {
            s_u8: 15,
            min_i8: -104,
        };
        assert_eq!(g.dequant_scalar(15), 121);
        assert_eq!(g.dequant_sweet(15), 121);
        // Intermediate: 225 + a where a = 128 - 104 = 24 → 249, then
        // XOR 0x80 → 121. No overflow anywhere.
        assert_eq!(g.offset_a(), 24);
        assert_eq!((225u8 + 24) ^ 0x80, 121);
    }

    #[test]
    fn offset_a_always_a_valid_byte() {
        for min in -PROTECTIVE_MAX..=PROTECTIVE_MAX {
            let g = LqqGroup {
                s_u8: 16,
                min_i8: min,
            };
            let a = g.offset_a();
            assert!((9..=247).contains(&a), "min={min} a={a}");
        }
    }

    #[test]
    fn quantize_group_basic() {
        let group = [-100i8, -50, 0, 50, 100];
        let (p, q) = LqqGroup::quantize(&group);
        assert_eq!(p.min_i8, -100);
        // range 200, s = round(200/15) = 13
        assert_eq!(p.s_u8, 13);
        assert!(q.iter().all(|&v| v < 16));
        // Round-trip error bounded by s/2 (+1 for clamped top code).
        for (&orig, &code) in group.iter().zip(q.iter()) {
            let back = p.dequant_scalar(code);
            assert!(
                (i16::from(back) - i16::from(orig)).abs() <= i16::from(p.s_u8 / 2 + 1),
                "orig={orig} back={back} s={}",
                p.s_u8
            );
        }
    }

    #[test]
    fn quantize_constant_group() {
        let (p, q) = LqqGroup::quantize(&[42i8; 16]);
        assert_eq!(p.s_u8, 1);
        assert_eq!(p.min_i8, 42);
        assert!(q.iter().all(|&v| v == 0));
        assert_eq!(p.dequant_scalar(0), 42);
    }

    #[test]
    fn quantize_extreme_group_hits_max_scale() {
        let (p, q) = LqqGroup::quantize(&[-PROTECTIVE_MAX, PROTECTIVE_MAX]);
        assert_eq!(p.s_u8, 16); // round(238/15) = 16
        assert_eq!(p.dequant_scalar(q[0]), -PROTECTIVE_MAX);
        // Top code: -119 + 15*16 = 121; clamped code = round(238/16)=15
        assert_eq!(q[1], 15);
        assert_eq!(p.dequant_scalar(q[1]), 121);
    }

    #[test]
    fn packed8_matches_scalar_and_costs_seven() {
        let group: Vec<i8> = vec![-90, -13, 7, 119, -119, 0, 64, -64];
        let (p, q) = LqqGroup::quantize(&group);
        let packed = lq_swar::unpack::pack8_u4([q[0], q[1], q[2], q[3], q[4], q[5], q[6], q[7]]);
        let mut alu = CountingAlu::new();
        let out = p.dequant8_ordered(&mut alu, packed);
        assert_eq!(alu.count().total(), 7, "LQQ must cost 7 instrs / 8 elems");
        for i in 0..8 {
            assert_eq!(out[i], p.dequant_scalar(q[i]), "elem {i}");
        }
    }

    #[test]
    fn tensor_quantize_shapes_and_roundtrip_bound() {
        let m = Mat::from_fn(8, 128, |r, c| {
            (((r * 131 + c * 17) % 239) as i16 - 119) as i8
        });
        let t = LqqTensor::quantize(&m, 64);
        assert_eq!(t.rows(), 8);
        assert_eq!(t.cols(), 128);
        assert_eq!(t.groups_per_row(), 2);
        assert_eq!(t.groups.len(), 16);
        assert_eq!(t.values.len(), 8 * 128);
        let back = t.dequantize();
        for r in 0..8 {
            for k in 0..128 {
                let err = (i16::from(*back.get(r, k)) - i16::from(*m.get(r, k))).abs();
                let s = t.group_at(r, k).s_u8;
                // s/2 rounding plus up-to-8 clamp error on the top code.
                assert!(err <= i16::from(s / 2 + 1).max(8), "err {err} s {s}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a multiple of group size")]
    fn tensor_bad_group_size_panics() {
        let m: Mat<i8> = Mat::zeros(2, 100);
        let _ = LqqTensor::quantize(&m, 64);
    }

    #[test]
    #[should_panic(expected = "empty quantization group")]
    fn empty_group_panics() {
        let _ = LqqGroup::quantize(&[]);
    }
}
