//! Criterion: the pipeline ablation on real threads (serial vs flat vs
//! ExCP vs ImFP with identical LQQ dequantization) — Figure 13's
//! CPU-measured counterpart.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lq_core::packed::PackedLqqLinear;
use lq_core::pipeline::{w4a8_excp, w4a8_flat_parallel, w4a8_imfp, ParallelConfig};
use lq_core::serial::w4a8_lqq_serial;
use lq_quant::act::QuantizedActivations;
use lq_quant::mat::Mat;

const N: usize = 1024;
const K: usize = 2048;
const M: usize = 64;

fn bench_pipelines(c: &mut Criterion) {
    let w = Mat::from_fn(N, K, |r, cc| ((r * K + cc) as f32 * 0.05).sin());
    let x = Mat::from_fn(M, K, |r, cc| ((r + cc) as f32 * 0.09).cos());
    let qa = QuantizedActivations::quantize(&x, None);
    let lqq = PackedLqqLinear::quantize(&w, 64);
    let workers = std::thread::available_parallelism().map_or(4, |p| p.get().min(8));
    let cfg = ParallelConfig { workers, task_rows: 16, stages: 2 * workers };

    let mut g = c.benchmark_group("pipeline_m64");
    g.bench_function(BenchmarkId::from_parameter("serial"), |b| {
        b.iter(|| black_box(w4a8_lqq_serial(&qa.q, &qa.scales, &lqq)));
    });
    g.bench_function(BenchmarkId::from_parameter("flat_parallel"), |b| {
        b.iter(|| black_box(w4a8_flat_parallel(&qa.q, &qa.scales, Some(&lqq), None, cfg)));
    });
    g.bench_function(BenchmarkId::from_parameter("excp"), |b| {
        b.iter(|| black_box(w4a8_excp(&qa.q, &qa.scales, Some(&lqq), None, cfg)));
    });
    g.bench_function(BenchmarkId::from_parameter("imfp"), |b| {
        b.iter(|| black_box(w4a8_imfp(&qa.q, &qa.scales, Some(&lqq), None, cfg)));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipelines
}
criterion_main!(benches);
