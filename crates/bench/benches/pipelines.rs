//! Microbenchmark: the pipeline ablation on real threads (serial vs
//! flat vs ExCP vs ImFP with identical LQQ dequantization) — Figure
//! 13's CPU-measured counterpart.
//!
//! Plain main (no criterion: the sandbox is offline); `--json` enables
//! telemetry (so the pipelines' stall counters and span histograms are
//! live) and dumps the registry to `BENCH_pipelines.json`.

use std::hint::black_box;

use lq_bench::bench_case;
use lq_core::api::W4A8Weights;
use lq_core::packed::PackedLqqLinear;
use lq_core::serial::w4a8_lqq_serial;
use lq_core::{KernelKind, LiquidGemm};
use lq_quant::act::QuantizedActivations;
use lq_quant::mat::Mat;

const N: usize = 1024;
const K: usize = 2048;
const M: usize = 64;

fn main() {
    let _json = lq_bench::json_dump("pipelines");
    let w = Mat::from_fn(N, K, |r, cc| ((r * K + cc) as f32 * 0.05).sin());
    let x = Mat::from_fn(M, K, |r, cc| ((r + cc) as f32 * 0.09).cos());
    let qa = QuantizedActivations::quantize(&x, None);
    let lqq = PackedLqqLinear::quantize(&w, 64);
    let workers = std::thread::available_parallelism().map_or(4, |p| p.get().min(8));
    // One persistent pool for all variants — the paper's persistent
    // kernel: workers outlive every call below.
    let lg = LiquidGemm::builder()
        .workers(workers)
        .task_rows(16)
        .stages(2 * workers)
        .build()
        .expect("valid config");
    let weights = W4A8Weights::lqq(lqq.clone());

    println!("pipeline_m64 (N={N} K={K} workers={workers})");
    bench_case("serial", 10, || {
        black_box(w4a8_lqq_serial(&qa.q, &qa.scales, &lqq));
    });
    bench_case("flat_parallel", 10, || {
        black_box(lg.gemm(&qa.q, &qa.scales, &weights, KernelKind::FlatParallel));
    });
    bench_case("excp", 10, || {
        black_box(lg.gemm(&qa.q, &qa.scales, &weights, KernelKind::ExCp));
    });
    bench_case("imfp", 10, || {
        black_box(lg.gemm(&qa.q, &qa.scales, &weights, KernelKind::ImFp));
    });
}
