//! Microbenchmark: the pipeline ablation on real threads (serial vs
//! flat vs ExCP vs ImFP with identical LQQ dequantization) — Figure
//! 13's CPU-measured counterpart.
//!
//! Plain main (no criterion: the sandbox is offline); `--json` enables
//! telemetry (so the pipelines' stall counters and span histograms are
//! live) and dumps the registry to `BENCH_pipelines.json`.

use std::hint::black_box;

use lq_bench::bench_case;
use lq_core::packed::PackedLqqLinear;
use lq_core::pipeline::{w4a8_excp, w4a8_flat_parallel, w4a8_imfp, ParallelConfig};
use lq_core::serial::w4a8_lqq_serial;
use lq_quant::act::QuantizedActivations;
use lq_quant::mat::Mat;

const N: usize = 1024;
const K: usize = 2048;
const M: usize = 64;

fn main() {
    let _json = lq_bench::json_dump("pipelines");
    let w = Mat::from_fn(N, K, |r, cc| ((r * K + cc) as f32 * 0.05).sin());
    let x = Mat::from_fn(M, K, |r, cc| ((r + cc) as f32 * 0.09).cos());
    let qa = QuantizedActivations::quantize(&x, None);
    let lqq = PackedLqqLinear::quantize(&w, 64);
    let workers = std::thread::available_parallelism().map_or(4, |p| p.get().min(8));
    let cfg = ParallelConfig {
        workers,
        task_rows: 16,
        stages: 2 * workers,
    };

    println!("pipeline_m64 (N={N} K={K} workers={workers})");
    bench_case("serial", 10, || {
        black_box(w4a8_lqq_serial(&qa.q, &qa.scales, &lqq));
    });
    bench_case("flat_parallel", 10, || {
        black_box(w4a8_flat_parallel(&qa.q, &qa.scales, Some(&lqq), None, cfg));
    });
    bench_case("excp", 10, || {
        black_box(w4a8_excp(&qa.q, &qa.scales, Some(&lqq), None, cfg));
    });
    bench_case("imfp", 10, || {
        black_box(w4a8_imfp(&qa.q, &qa.scales, Some(&lqq), None, cfg));
    });
}
