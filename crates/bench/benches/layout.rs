//! Microbenchmark: memory-layout ablation — sequential dual-MMA packed
//! streaming vs a strided per-thread gather (the `LDS.32` fallback's
//! CPU analog: same bytes touched, worse locality, more address math).
//!
//! Plain main (no criterion: the sandbox is offline); `--json` dumps
//! the telemetry registry to `BENCH_layout.json`.

use std::hint::black_box;

use lq_bench::bench_case;
use lq_layout::dual_mma::DualMmaWeights;

const N: usize = 512;
const K: usize = 4096;

fn main() {
    let _json = lq_bench::json_dump("layout");
    let values: Vec<u8> = (0..N * K).map(|i| (i % 16) as u8).collect();
    let packed = DualMmaWeights::pack(&values, N, K);
    let words_per_row = K / 8;

    println!("weight_load ({} bytes per sweep)", N * K / 2);

    // Dual-MMA packed: one sequential sweep per row.
    bench_case("dual_mma_sequential", 20, || {
        let mut acc = 0u32;
        for r in 0..N {
            for &w in packed.row_words(r) {
                acc = acc.wrapping_add(w);
            }
        }
        black_box(acc);
    });

    // Strided gather: each "thread" t of 8 reads every 8th word (the
    // fragment-lane access pattern ldmatrix would need), with
    // per-access index arithmetic.
    bench_case("strided_gather", 20, || {
        let mut acc = 0u32;
        for r in 0..N {
            let row = packed.row_words(r);
            for t in 0..8usize {
                let mut i = t;
                while i < words_per_row {
                    acc = acc.wrapping_add(row[i]);
                    i += 8;
                }
            }
        }
        black_box(acc);
    });
}
