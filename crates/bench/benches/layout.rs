//! Criterion: memory-layout ablation — sequential dual-MMA packed
//! streaming vs a strided per-thread gather (the `LDS.32` fallback's CPU
//! analog: same bytes touched, worse locality, more address math).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lq_layout::dual_mma::DualMmaWeights;

const N: usize = 512;
const K: usize = 4096;

fn bench_layout(c: &mut Criterion) {
    let values: Vec<u8> = (0..N * K).map(|i| (i % 16) as u8).collect();
    let packed = DualMmaWeights::pack(&values, N, K);
    let words_per_row = K / 8;

    let mut g = c.benchmark_group("weight_load");
    g.throughput(Throughput::Bytes((N * K / 2) as u64));

    // Dual-MMA packed: one sequential sweep per row.
    g.bench_function("dual_mma_sequential", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for r in 0..N {
                for &w in packed.row_words(r) {
                    acc = acc.wrapping_add(w);
                }
            }
            black_box(acc)
        });
    });

    // Strided gather: each "thread" t of 8 reads every 8th word (the
    // fragment-lane access pattern ldmatrix would need), with per-access
    // index arithmetic.
    g.bench_function("strided_gather", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for r in 0..N {
                let row = packed.row_words(r);
                for t in 0..8usize {
                    let mut i = t;
                    while i < words_per_row {
                        acc = acc.wrapping_add(row[i]);
                        i += 8;
                    }
                }
            }
            black_box(acc)
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_layout
}
criterion_main!(benches);
