//! Microbenchmark: paged KV-cache allocator operations (the serving
//! substrate's hot path: one `append_token` per sequence per step).
//!
//! Plain main (no criterion: the sandbox is offline); `--json` enables
//! telemetry (page alloc/free counters live) and dumps the registry to
//! `BENCH_kvcache.json`. Setup work (building the cache) is inside the
//! timed closure, so compare runs only against runs of the same shape.

use std::hint::black_box;

use lq_bench::bench_case;
use lq_serving::kvcache::PagedKvCache;

fn main() {
    let _json = lq_bench::json_dump("kvcache");
    println!("kvcache");

    // One decode step for 256 live sequences (setup + step timed
    // together; the step dominates at these sizes).
    bench_case("append_step_256_seqs", 20, || {
        let mut cache = PagedKvCache::new(1 << 30, 16, 1024);
        for id in 0..256 {
            cache.add_sequence(id, 1024).expect("fits");
        }
        for id in 0..256 {
            cache.append_token(id).expect("fits");
        }
        black_box(cache.free_pages());
    });

    // Admission + eviction churn.
    bench_case("admit_evict_churn", 20, || {
        let mut cache = PagedKvCache::new(1 << 28, 16, 1024);
        for id in 0..64u64 {
            let _ = cache.add_sequence(id, 512);
            if id >= 8 {
                let _ = cache.free_sequence(id - 8);
            }
        }
        black_box(cache.live_sequences());
    });
}
