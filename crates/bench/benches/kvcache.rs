//! Criterion: paged KV-cache allocator operations (the serving
//! substrate's hot path: one `append_token` per sequence per step).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lq_serving::kvcache::PagedKvCache;

fn bench_kvcache(c: &mut Criterion) {
    let mut g = c.benchmark_group("kvcache");

    // One decode step for 256 live sequences.
    g.throughput(Throughput::Elements(256));
    g.bench_function("append_step_256_seqs", |b| {
        b.iter_batched(
            || {
                let mut cache = PagedKvCache::new(1 << 30, 16, 1024);
                for id in 0..256 {
                    cache.add_sequence(id, 1024).expect("fits");
                }
                cache
            },
            |mut cache| {
                for id in 0..256 {
                    cache.append_token(id).expect("fits");
                }
                black_box(cache.free_pages())
            },
            criterion::BatchSize::LargeInput,
        );
    });

    // Admission + eviction churn.
    g.bench_function("admit_evict_churn", |b| {
        b.iter_batched(
            || PagedKvCache::new(1 << 28, 16, 1024),
            |mut cache| {
                for id in 0..64u64 {
                    let _ = cache.add_sequence(id, 512);
                    if id >= 8 {
                        let _ = cache.free_sequence(id - 8);
                    }
                }
                black_box(cache.live_sequences())
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kvcache
}
criterion_main!(benches);
