//! Microbenchmark: the dequantization microkernels.
//!
//! Measures the real CPU cost of LQQ's IMAD+XOR path against QoQ's
//! emulated-vsub4 path on identical packed data — the per-register
//! instruction-count gap (7 vs 19) should show up as wall-clock.
//!
//! Plain main (no criterion: the sandbox is offline); `--json` dumps
//! the telemetry registry to `BENCH_dequant.json`.

use std::hint::black_box;

use lq_bench::bench_case;
use lq_core::microkernel::{dequant_group_lqq, dequant_group_qoq};
use lq_quant::lqq::LqqGroup;
use lq_quant::qoq::QoqGroup;

fn main() {
    let _json = lq_bench::json_dump("dequant");
    const GROUPS: usize = 1024;
    const GROUP: usize = 64;
    let source: Vec<i8> = (0..GROUPS * GROUP)
        .map(|i| ((i * 37) % 239 - 119) as i8)
        .collect();

    // Quantize once per scheme; store packed words + params.
    let mut lqq_words = Vec::new();
    let mut lqq_params = Vec::new();
    let mut qoq_words = Vec::new();
    let mut qoq_params = Vec::new();
    for g in source.chunks_exact(GROUP) {
        let (p, codes) = LqqGroup::quantize(g);
        lqq_params.push(p);
        lqq_words.push(lq_layout::pack::pack_row_words(&codes));
        let (p, codes) = QoqGroup::quantize(g);
        qoq_params.push(p);
        qoq_words.push(lq_layout::pack::pack_row_words(&codes));
    }

    println!("dequant ({} elements per pass)", GROUPS * GROUP);
    let mut out = vec![0i8; GROUP];
    bench_case("lqq_imad_xor", 20, || {
        for (words, &p) in lqq_words.iter().zip(lqq_params.iter()) {
            dequant_group_lqq(black_box(words), p, &mut out);
        }
        black_box(out[0]);
    });
    let mut out = vec![0i8; GROUP];
    bench_case("qoq_emulated_vsub4", 20, || {
        for (words, &p) in qoq_words.iter().zip(qoq_params.iter()) {
            dequant_group_qoq(black_box(words), p, &mut out);
        }
        black_box(out[0]);
    });
}
