//! Criterion microbenchmark: the dequantization microkernels.
//!
//! Measures the real CPU cost of LQQ's IMAD+XOR path against QoQ's
//! emulated-vsub4 path on identical packed data — the per-register
//! instruction-count gap (7 vs 19) should show up as wall-clock.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lq_core::microkernel::{dequant_group_lqq, dequant_group_qoq};
use lq_quant::lqq::LqqGroup;
use lq_quant::qoq::QoqGroup;

fn bench_dequant(c: &mut Criterion) {
    const GROUPS: usize = 1024;
    const GROUP: usize = 64;
    let source: Vec<i8> = (0..GROUPS * GROUP)
        .map(|i| ((i * 37) % 239 - 119) as i8)
        .collect();

    // Quantize once per scheme; store packed words + params.
    let mut lqq_words = Vec::new();
    let mut lqq_params = Vec::new();
    let mut qoq_words = Vec::new();
    let mut qoq_params = Vec::new();
    for g in source.chunks_exact(GROUP) {
        let (p, codes) = LqqGroup::quantize(g);
        lqq_params.push(p);
        lqq_words.push(lq_layout::pack::pack_row_words(&codes));
        let (p, codes) = QoqGroup::quantize(g);
        qoq_params.push(p);
        qoq_words.push(lq_layout::pack::pack_row_words(&codes));
    }

    let mut group = c.benchmark_group("dequant");
    group.throughput(Throughput::Elements((GROUPS * GROUP) as u64));
    let mut out = vec![0i8; GROUP];
    group.bench_function("lqq_imad_xor", |b| {
        b.iter(|| {
            for (words, &p) in lqq_words.iter().zip(lqq_params.iter()) {
                dequant_group_lqq(black_box(words), p, &mut out);
            }
            black_box(out[0]);
        });
    });
    group.bench_function("qoq_emulated_vsub4", |b| {
        b.iter(|| {
            for (words, &p) in qoq_words.iter().zip(qoq_params.iter()) {
                dequant_group_qoq(black_box(words), p, &mut out);
            }
            black_box(out[0]);
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dequant
}
criterion_main!(benches);
