//! Microbenchmark: the executable engine — decode-step latency and the
//! prefill-vs-token-by-token amortization (the CPU-real demonstration
//! that per-group dequantization amortises over the batch dimension M,
//! the effect the paper's cost model attributes the W4A8 win to).
//!
//! Plain main (no criterion: the sandbox is offline); `--json` dumps
//! the telemetry registry to `BENCH_engine.json`. Model setup is inside
//! the timed closure (the decode/prefill work dominates).

use std::hint::black_box;
use std::sync::Arc;

use lq_bench::bench_case;
use lq_core::{KernelKind, LiquidGemm};
use lq_engine::attention::AttnConfig;
use lq_engine::model::{ModelSpec, TinyLlm};

fn spec() -> ModelSpec {
    ModelSpec {
        vocab: 128,
        hidden: 128,
        inter: 256,
        layers: 2,
        attn: AttnConfig {
            heads: 8,
            kv_heads: 2,
            head_dim: 16,
        },
        group: 64,
    }
}

fn main() {
    let _json = lq_bench::json_dump("engine");
    println!("engine");

    // One shared GEMM engine for every model built below: the timed
    // closures rebuild model weights, not the worker pool.
    let engine = Arc::new(LiquidGemm::builder().build().expect("valid config"));

    // Decode-step latency at growing batch: step time should grow
    // sublinearly in batch (weight streaming amortises).
    for batch in [1usize, 4, 16] {
        bench_case(&format!("decode_step/{batch}"), 10, || {
            let mut m = TinyLlm::synthetic_with_engine(
                spec(),
                512,
                KernelKind::Serial,
                Arc::clone(&engine),
            );
            let seqs: Vec<u64> = (0..batch as u64).collect();
            for &s in &seqs {
                m.add_sequence(s);
            }
            // Warm each sequence with one token, then time-relevant step.
            let toks: Vec<usize> = (0..batch).map(|i| i % 64).collect();
            let pos = vec![0usize; batch];
            let _ = m.decode_step(&toks, &seqs, &pos);
            let toks: Vec<usize> = (0..batch).map(|i| (i * 3) % 64).collect();
            let pos = vec![1usize; batch];
            black_box(m.decode_step(&toks, &seqs, &pos));
        });
    }

    // Prefill (one batched pass) vs token-by-token decode of the same
    // 32-token prompt.
    let prompt: Vec<usize> = (0..32).map(|i| (i * 5) % 64).collect();
    bench_case("prefill_batched_32", 10, || {
        let mut m =
            TinyLlm::synthetic_with_engine(spec(), 512, KernelKind::Serial, Arc::clone(&engine));
        m.add_sequence(0);
        black_box(m.prefill(0, &prompt));
    });
    bench_case("prefill_token_by_token_32", 10, || {
        let mut m =
            TinyLlm::synthetic_with_engine(spec(), 512, KernelKind::Serial, Arc::clone(&engine));
        m.add_sequence(0);
        let mut last = None;
        for (pos, &t) in prompt.iter().enumerate() {
            last = Some(m.decode_step(&[t], &[0], &[pos]));
        }
        black_box(last);
    });
}
