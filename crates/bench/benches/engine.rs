//! Criterion: the executable engine — decode-step latency and the
//! prefill-vs-token-by-token amortization (the CPU-real demonstration
//! that per-group dequantization amortises over the batch dimension M,
//! the effect the paper's cost model attributes the W4A8 win to).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lq_core::KernelKind;
use lq_engine::attention::AttnConfig;
use lq_engine::model::{ModelSpec, TinyLlm};

fn spec() -> ModelSpec {
    ModelSpec {
        vocab: 128,
        hidden: 128,
        inter: 256,
        layers: 2,
        attn: AttnConfig { heads: 8, kv_heads: 2, head_dim: 16 },
        group: 64,
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");

    // Decode-step latency at growing batch: step time should grow
    // sublinearly in batch (weight streaming amortises).
    for batch in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::new("decode_step", batch), &batch, |b, &batch| {
            b.iter_batched(
                || {
                    let mut m = TinyLlm::synthetic(spec(), 512, KernelKind::Serial);
                    let seqs: Vec<u64> = (0..batch as u64).collect();
                    for &s in &seqs {
                        m.add_sequence(s);
                    }
                    // Warm each sequence with one token.
                    let toks: Vec<usize> = (0..batch).map(|i| i % 64).collect();
                    let pos = vec![0usize; batch];
                    let _ = m.decode_step(&toks, &seqs, &pos);
                    (m, seqs)
                },
                |(mut m, seqs)| {
                    let toks: Vec<usize> = (0..seqs.len()).map(|i| (i * 3) % 64).collect();
                    let pos = vec![1usize; seqs.len()];
                    black_box(m.decode_step(&toks, &seqs, &pos))
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }

    // Prefill (one batched pass) vs token-by-token decode of the same
    // 32-token prompt.
    let prompt: Vec<usize> = (0..32).map(|i| (i * 5) % 64).collect();
    g.bench_function("prefill_batched_32", |b| {
        b.iter_batched(
            || {
                let mut m = TinyLlm::synthetic(spec(), 512, KernelKind::Serial);
                m.add_sequence(0);
                m
            },
            |mut m| black_box(m.prefill(0, &prompt)),
            criterion::BatchSize::LargeInput,
        );
    });
    g.bench_function("prefill_token_by_token_32", |b| {
        b.iter_batched(
            || {
                let mut m = TinyLlm::synthetic(spec(), 512, KernelKind::Serial);
                m.add_sequence(0);
                m
            },
            |mut m| {
                let mut last = None;
                for (pos, &t) in prompt.iter().enumerate() {
                    last = Some(m.decode_step(&[t], &[0], &[pos]));
                }
                black_box(last)
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine
}
criterion_main!(benches);
