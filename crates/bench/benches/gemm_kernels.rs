//! Microbenchmark: serial GEMM kernels across precisions (the CPU-real
//! counterpart of Figure 12's per-kernel comparison), plus the
//! pool-amortisation sweep: per-call worker spawn vs one persistent
//! pool across decode-to-prefill batch sizes — the CPU-measured
//! counterpart of the paper's persistent-kernel argument (§5.4).
//!
//! Plain main (no criterion: the sandbox is offline); `--json` dumps
//! the telemetry registry to `BENCH_gemm_kernels.json`.

use std::hint::black_box;

use lq_bench::{bench_case, fmt_time, measure_median, print_header, print_row};
use lq_core::api::W4A8Weights;
use lq_core::packed::{
    Fp16Linear, Fp8Linear, PackedLqqLinear, PackedQoqLinear, W4A16Linear, W8A8Linear,
};
use lq_core::serial::{
    fp16_serial, fp8_serial, w4a16_serial, w4a8_lqq_serial, w4a8_qoq_serial, w8a8_serial,
};
use lq_core::{KernelKind, LiquidGemm};
use lq_quant::act::QuantizedActivations;
use lq_quant::mat::Mat;

const N: usize = 512;
const K: usize = 2048;

/// Per-call-spawn vs persistent-pool ImFP latency across batch sizes.
/// At decode shapes (M ≤ 8) thread spawn+join dominates the tiny GEMM,
/// so the persistent pool must win by a wide margin; by M = 64 the
/// compute amortises the overhead and the gap narrows.
fn pool_amortisation(lqq: &PackedLqqLinear) {
    let weights = W4A8Weights::Lqq(lqq.clone());
    let workers = std::thread::available_parallelism().map_or(4, |p| p.get().min(8));
    // The legacy per-call path spawned `ParallelConfig::default().workers`
    // scoped threads on every GEMM, independent of machine size; the
    // spawn/call baseline reproduces exactly that bill.
    let legacy_workers = lq_core::ParallelConfig::default().workers;
    let lg = LiquidGemm::builder()
        .workers(workers)
        .task_rows(16)
        .build()
        .expect("valid config");
    // Each timed iteration runs CALLS GEMMs so per-call times are
    // median-of-medians stable even at the sub-ms decode shapes.
    const CALLS: usize = 4;
    println!(
        "\npool_amortisation (N={N} K={K}, ImFP, per-call times; \
         spawn/call={legacy_workers} threads per call, persistent={workers}-worker pool)"
    );
    print_header(&[
        ("M", 4),
        ("spawn/call", 11),
        ("persistent", 11),
        ("speedup", 8),
    ]);
    for m in [1usize, 4, 16, 64] {
        let x = Mat::from_fn(m, K, |r, c| ((r * K + c) as f32 * 0.07).cos());
        let qa = QuantizedActivations::quantize(&x, None);
        let t_spawn = measure_median(12, || {
            // The pre-handle world: every call pays pool construction
            // (thread spawn) and teardown (join).
            for _ in 0..CALLS {
                let fresh = LiquidGemm::builder()
                    .workers(legacy_workers)
                    .task_rows(16)
                    .build()
                    .expect("valid config");
                black_box(fresh.gemm(&qa.q, &qa.scales, &weights, KernelKind::ImFp));
            }
        }) / CALLS as f64;
        let t_pool = measure_median(12, || {
            for _ in 0..CALLS {
                black_box(lg.gemm(&qa.q, &qa.scales, &weights, KernelKind::ImFp));
            }
        }) / CALLS as f64;
        print_row(&[
            (m.to_string(), 4),
            (fmt_time(t_spawn), 11),
            (fmt_time(t_pool), 11),
            (format!("{:.2}x", t_spawn / t_pool), 8),
        ]);
    }
}

fn main() {
    let _json = lq_bench::json_dump("gemm_kernels");
    let w = Mat::from_fn(N, K, |r, c| ((r * K + c) as f32 * 0.11).sin());
    let x = Mat::from_fn(32, K, |r, c| ((r + c) as f32 * 0.07).cos());
    let qa = QuantizedActivations::quantize(&x, None);
    let lqq = PackedLqqLinear::quantize(&w, 64);
    let qoq = PackedQoqLinear::quantize(&w, 64);
    let w8 = W8A8Linear::quantize(&w);
    let w4a16 = W4A16Linear::quantize(&w, 64);
    let f16 = Fp16Linear::encode(&w);
    let f8 = Fp8Linear::encode(&w);

    println!("gemm_serial_m32 (N={N} K={K})");
    bench_case("w4a8_lqq", 10, || {
        black_box(w4a8_lqq_serial(&qa.q, &qa.scales, &lqq));
    });
    bench_case("w4a8_qoq", 10, || {
        black_box(w4a8_qoq_serial(&qa.q, &qa.scales, &qoq));
    });
    bench_case("w8a8", 10, || {
        black_box(w8a8_serial(&qa.q, &qa.scales, &w8));
    });
    bench_case("w4a16", 10, || {
        black_box(w4a16_serial(&x, &w4a16));
    });
    bench_case("fp16", 10, || {
        black_box(fp16_serial(&x, &f16));
    });
    bench_case("fp8", 10, || {
        black_box(fp8_serial(&x, &f8));
    });

    pool_amortisation(&lqq);
}
