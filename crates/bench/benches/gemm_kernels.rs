//! Microbenchmark: serial GEMM kernels across precisions (the CPU-real
//! counterpart of Figure 12's per-kernel comparison), plus the
//! pool-amortisation sweep: per-call worker spawn vs one persistent
//! pool across decode-to-prefill batch sizes — the CPU-measured
//! counterpart of the paper's persistent-kernel argument (§5.4) — and a
//! pool-balance audit of the work-stealing scheduler (per-worker
//! jobs/busy-ns/steals and the max/min busy-ns ratio).
//!
//! Plain main (no criterion: the sandbox is offline); `--json` dumps
//! the telemetry registry to `BENCH_gemm_kernels.json`. `--smoke` runs
//! the balance audit on tiny shapes once per registered dequant
//! backend (each on a fresh 4-worker pool) and exits non-zero if any
//! backend's busy-ns max/min ratio exceeds [`BALANCE_GATE`] — the
//! release-mode CI gate for scheduler fairness regressions — if any
//! worker ran zero jobs, or if a fault-free run records any job retry
//! (retries may only come from the self-healing path, so a nonzero
//! count here means a worker panicked spontaneously). With
//! `--trace <path>` the smoke run also records scheduler events,
//! writes a validated Chrome trace, and fails unless every worker
//! traced at least one `job_start`.

use std::hint::black_box;

use lq_bench::{bench_case, fmt_time, measure_median, print_header, print_row};
use lq_core::api::W4A8Weights;
use lq_core::microkernel::dispatch_counts;
use lq_core::packed::{
    Fp16Linear, Fp8Linear, PackedLqqLinear, PackedQoqLinear, W4A16Linear, W8A8Linear,
};
use lq_core::reference::max_abs_diff;
use lq_core::serial::{
    fp16_serial, fp8_serial, w4a16_serial, w4a8_lqq_serial, w4a8_qoq_serial, w4a8_serial,
    w4a8_serial_with, w8a8_serial,
};
use lq_core::shard::{ShardedGemm, ShardedWeights};
use lq_core::{registry, KernelKind, LiquidGemm, MicrokernelSet, SimdVariant};
use lq_models::configs::LLAMA2_70B;
use lq_models::shapes::decode_layer_shapes;
use lq_quant::act::QuantizedActivations;
use lq_quant::mat::Mat;

const N: usize = 512;
const K: usize = 2048;

/// Busy-ns max/min ratio above which `--smoke` fails the run: with
/// round-robin placement plus stealing, workers should stay within 2×
/// of each other even on a single hardware core.
const BALANCE_GATE: f64 = 2.0;

/// `--smoke` decode-latency gate: the freshly measured persistent-pool
/// decode (M=1) median may regress at most 10% against the
/// `lq_bench_decode_m1_ns` gauge in the committed
/// `BENCH_gemm_kernels.json` snapshot at the workspace root. A missing
/// file or gauge (a bootstrap run that predates the gauge) skips the
/// gate with a note instead of failing.
const DECODE_M1_GATE: f64 = 1.10;

/// The committed decode-M1 baseline, read from the repo-root snapshot
/// *before* the `--json` dump-on-drop overwrites it. Hand-rolled scan
/// (the sandbox has no serde): finds the gauge key and parses the
/// number after the colon.
fn committed_decode_m1_baseline() -> Option<f64> {
    let s =
        std::fs::read_to_string(lq_bench::workspace_root().join("BENCH_gemm_kernels.json")).ok()?;
    let key = "\"lq_bench_decode_m1_ns\":";
    let i = s.find(key)? + key.len();
    let rest = s[i..].trim_start_matches(' ');
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '-' | '+')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Median per-call persistent-pool ImFP decode (M=1) latency in
/// nanoseconds, recorded into the `lq_bench_decode_m1_ns` gauge so the
/// committed snapshot carries the baseline the smoke gate compares
/// against.
fn bench_decode_m1(lg: &LiquidGemm, weights: &W4A8Weights) -> f64 {
    const CALLS: usize = 8;
    let x = Mat::from_fn(1, K, |_, c| (c as f32 * 0.07).cos());
    let qa = QuantizedActivations::quantize(&x, None);
    let t = measure_median(12, || {
        for _ in 0..CALLS {
            black_box(lg.gemm(&qa.q, &qa.scales, weights, KernelKind::ImFp));
        }
    }) / CALLS as f64;
    let ns = t * 1e9;
    lq_telemetry::registry()
        .gauge_with(
            "lq_bench_decode_m1_ns",
            &[("variant", lg.pool().microkernels().variant().label())],
        )
        .set(ns);
    // Unlabelled mirror: one stable key for the smoke gate to scan.
    lq_telemetry::registry()
        .gauge("lq_bench_decode_m1_ns")
        .set(ns);
    ns
}

/// Per-call-spawn vs persistent-pool ImFP latency across batch sizes.
/// At decode shapes (M ≤ 8) thread spawn+join dominates the tiny GEMM,
/// so the persistent pool must win by a wide margin; by M = 64 the
/// compute amortises the overhead and the gap narrows.
fn pool_amortisation(lqq: &PackedLqqLinear) {
    let weights = W4A8Weights::lqq(lqq.clone());
    let workers = std::thread::available_parallelism().map_or(4, |p| p.get().min(8));
    // The legacy per-call path spawned `ParallelConfig::default().workers`
    // scoped threads on every GEMM, independent of machine size; the
    // spawn/call baseline reproduces exactly that bill.
    let legacy_workers = lq_core::ParallelConfig::default().workers;
    let lg = LiquidGemm::builder()
        .workers(workers)
        .task_rows(16)
        .build()
        .expect("valid config");
    // Each timed iteration runs CALLS GEMMs so per-call times are
    // median-of-medians stable even at the sub-ms decode shapes.
    const CALLS: usize = 4;
    println!(
        "\npool_amortisation (N={N} K={K}, ImFP, per-call times; \
         spawn/call={legacy_workers} threads per call, persistent={workers}-worker pool)"
    );
    print_header(&[
        ("M", 4),
        ("spawn/call", 11),
        ("persistent", 11),
        ("speedup", 8),
    ]);
    for m in [1usize, 4, 16, 64] {
        let x = Mat::from_fn(m, K, |r, c| ((r * K + c) as f32 * 0.07).cos());
        let qa = QuantizedActivations::quantize(&x, None);
        let t_spawn = measure_median(12, || {
            // The pre-handle world: every call pays pool construction
            // (thread spawn) and teardown (join).
            for _ in 0..CALLS {
                let fresh = LiquidGemm::builder()
                    .workers(legacy_workers)
                    .task_rows(16)
                    .build()
                    .expect("valid config");
                black_box(fresh.gemm(&qa.q, &qa.scales, &weights, KernelKind::ImFp));
            }
        }) / CALLS as f64;
        let t_pool = measure_median(12, || {
            for _ in 0..CALLS {
                black_box(lg.gemm(&qa.q, &qa.scales, &weights, KernelKind::ImFp));
            }
        }) / CALLS as f64;
        print_row(&[
            (m.to_string(), 4),
            (fmt_time(t_spawn), 11),
            (fmt_time(t_pool), 11),
            (format!("{:.2}x", t_spawn / t_pool), 8),
        ]);
    }
}

/// Drive `calls` ImFP GEMMs on a fresh 4-worker pool and audit how
/// evenly the work-stealing scheduler spread them: per-worker
/// jobs/busy-ns/steals from [`WorkerPool::worker_stats`], plus the
/// max/min busy-ns ratio. The ratio lands in the `--json` dump as the
/// `lq_pool_busy_balance_ratio` gauge so the committed snapshot records
/// scheduler fairness alongside the steal counters. Also returns the
/// total job-retry count — on a fault-free run it must be 0 (the
/// `--smoke` gate).
///
/// [`WorkerPool::worker_stats`]: lq_core::runtime::WorkerPool::worker_stats
fn pool_balance(
    weights: &W4A8Weights,
    k: usize,
    m: usize,
    task_rows: usize,
    calls: usize,
) -> (f64, u64, u64) {
    let backend = weights.backend().label();
    let lg = LiquidGemm::builder()
        .workers(4)
        .task_rows(task_rows)
        .build()
        .expect("valid config");
    let x = Mat::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.05).sin());
    let qa = QuantizedActivations::quantize(&x, None);
    for _ in 0..calls {
        black_box(lg.gemm(&qa.q, &qa.scales, weights, KernelKind::ImFp));
    }
    let stats = lg.pool().worker_stats();
    println!(
        "\npool_balance (backend={backend}, M={m} K={k}, task_rows={task_rows}, \
         {calls} ImFP calls, 4 workers)"
    );
    print_header(&[
        ("worker", 6),
        ("jobs", 8),
        ("busy", 10),
        ("steals", 8),
        ("restarts", 9),
        ("retries", 8),
        ("pinned", 7),
    ]);
    for (id, s) in stats.iter().enumerate() {
        print_row(&[
            (id.to_string(), 6),
            (s.jobs.to_string(), 8),
            (fmt_time(s.busy_ns as f64 * 1e-9), 10),
            (s.steals.to_string(), 8),
            (s.restarts.to_string(), 9),
            (s.retries.to_string(), 8),
            (s.pinned_cpu.map_or("-".into(), |c| format!("cpu{c}")), 7),
        ]);
    }
    let max = stats.iter().map(|s| s.busy_ns).max().unwrap_or(0);
    let min = stats.iter().map(|s| s.busy_ns).min().unwrap_or(0).max(1);
    let ratio = max as f64 / min as f64;
    let retries: u64 = stats.iter().map(|s| s.retries).sum();
    let min_jobs = stats.iter().map(|s| s.jobs).min().unwrap_or(0);
    println!("busy-ns max/min ratio: {ratio:.2} (gate: {BALANCE_GATE:.1}), retries: {retries}");
    lq_telemetry::registry()
        .gauge_with("lq_pool_busy_balance_ratio", &[("backend", backend)])
        .set(ratio);
    (ratio, retries, min_jobs)
}

/// `--smoke` sharded gate (DESIGN.md §14): on a tiny shape, a 2-shard
/// column-parallel and row-parallel run must be **bit-exact** against
/// the 1-shard run over the same pack, and the two shard pools'
/// aggregate busy-ns must stay within [`BALANCE_GATE`] of each other —
/// the balanced column plan hands each shard the same work, so a skewed
/// shard means a scheduler or placement regression. Runs under
/// `LQ_FORCE_SCALAR` too (the exactness argument is
/// variant-independent).
fn sharded_smoke_gate() {
    let w = Mat::from_fn(129, 256, |r, c| ((r * 256 + c) as f32 * 0.11).sin());
    let x = Mat::from_fn(8, 256, |r, c| ((r + c) as f32 * 0.07).cos());
    let qa = QuantizedActivations::quantize(&x, None);
    let build = |shards: usize| {
        ShardedGemm::builder()
            .shards(shards)
            .workers_per_shard(2)
            .task_rows(2)
            .build()
            .expect("valid shard config")
    };
    let tp1 = build(1);
    let tp2 = build(2);
    let sw1 = tp1.pack_weights(&w, 64);
    let sw2 = tp2.pack_weights(&w, 64);
    let want = tp1
        .gemm(&qa.q, &qa.scales, &sw1, KernelKind::ImFp)
        .expect("healthy shard")
        .y;
    for call in 0..32 {
        let col = tp2
            .gemm(&qa.q, &qa.scales, &sw2, KernelKind::ImFp)
            .expect("healthy shards")
            .y;
        if max_abs_diff(&col, &want) != 0.0 {
            eprintln!("FAIL: 2-shard column output differs from 1-shard (call {call})");
            std::process::exit(1);
        }
        let row = tp2
            .gemm_row(&qa.q, &qa.scales, &sw2)
            .expect("healthy shards")
            .y;
        if max_abs_diff(&row, &want) != 0.0 {
            eprintln!("FAIL: 2-shard row output differs from 1-shard (call {call})");
            std::process::exit(1);
        }
    }
    // Shard busy-balance: total busy-ns per shard pool.
    let busy: Vec<u64> = (0..tp2.shards())
        .map(|s| {
            tp2.shard_pool(s)
                .pool()
                .worker_stats()
                .iter()
                .map(|w| w.busy_ns)
                .sum()
        })
        .collect();
    let max = busy.iter().copied().max().unwrap_or(0);
    let min = busy.iter().copied().min().unwrap_or(0).max(1);
    let ratio = max as f64 / min as f64;
    println!("sharded busy-balance ratio: {ratio:.2} (gate: {BALANCE_GATE:.1})");
    lq_telemetry::registry()
        .gauge("lq_bench_shard_busy_balance_ratio")
        .set(ratio);
    if ratio > BALANCE_GATE {
        eprintln!("FAIL: shard busy-ns max/min ratio {ratio:.2} exceeds gate {BALANCE_GATE:.1}");
        std::process::exit(1);
    }
    println!("sharded smoke OK: 2-shard bit-exact vs 1-shard (column + row), balance {ratio:.2}");
}

/// Tensor-parallel throughput sweep on a 70B-scale layer: the Llama-2
/// 70B attention output projection (`decode_layer_shapes`, N = K =
/// 8192) at a decode batch of M = 8, one pack shared across shard
/// counts 1/2/4. Records `lq_bench_sharded_ns{shards=...}` gauges for
/// the committed snapshot — the EXPERIMENTS.md per-shard-count table.
fn sharded_sweep() {
    let shape = decode_layer_shapes(&LLAMA2_70B, 8).dense[1]; // O-proj
    let (m, n, k) = (shape.m, shape.n, shape.k);
    let workers = std::thread::available_parallelism().map_or(4, |p| p.get().min(8));
    println!("\nsharded_sweep (70B O-proj: M={m} N={n} K={k}, ImFP column-parallel)");
    let w = Mat::from_fn(n, k, |r, c| (((r * 31 + c * 7) % 97) as f32 * 0.021).sin());
    let x = Mat::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.07).cos());
    let qa = QuantizedActivations::quantize(&x, None);
    // One pack, re-planned per shard count — the sweep measures the
    // sharding, not repeated quantization.
    let packed = W4A8Weights::quantize(&w, 64, lq_core::BackendId::Lqq);
    print_header(&[("shards", 6), ("latency", 11), ("GOP/s", 8), ("speedup", 8)]);
    let mut base = None;
    for shards in [1usize, 2, 4] {
        let tp = ShardedGemm::builder()
            .shards(shards)
            .workers_per_shard((workers / shards).max(1))
            .task_rows(16)
            .build()
            .expect("valid shard config");
        let sw = ShardedWeights::from_weights(&packed, shards);
        let t = measure_median(5, || {
            black_box(
                tp.gemm(&qa.q, &qa.scales, &sw, KernelKind::ImFp)
                    .expect("healthy shards"),
            );
        });
        let gops = (2.0 * m as f64 * n as f64 * k as f64) / t / 1e9;
        let base_t = *base.get_or_insert(t);
        print_row(&[
            (shards.to_string(), 6),
            (fmt_time(t), 11),
            (format!("{gops:.1}"), 8),
            (format!("{:.2}x", base_t / t), 8),
        ]);
        let label = shards.to_string();
        lq_telemetry::registry()
            .gauge_with("lq_bench_sharded_ns", &[("shards", label.as_str())])
            .set(t * 1e9);
    }
}

/// The `--smoke` decode-latency regression gate: measure persistent
/// decode (M=1) on the full N×K shape with the auto-selected variant,
/// compare against the committed-snapshot baseline, exit non-zero past
/// [`DECODE_M1_GATE`].
fn run_decode_gate(decode_baseline: Option<f64>) {
    let workers = std::thread::available_parallelism().map_or(4, |p| p.get().min(8));
    let lg = LiquidGemm::builder()
        .workers(workers)
        .task_rows(16)
        .build()
        .expect("valid config");
    let big = Mat::from_fn(N, K, |r, c| ((r * K + c) as f32 * 0.11).sin());
    let weights = W4A8Weights::lqq(PackedLqqLinear::quantize(&big, 64));
    let got_ns = bench_decode_m1(&lg, &weights);
    match decode_baseline {
        Some(base_ns) => {
            let ratio = got_ns / base_ns;
            println!(
                "decode_m1: {} vs committed {} ({ratio:.2}x, gate {DECODE_M1_GATE:.2}x)",
                fmt_time(got_ns * 1e-9),
                fmt_time(base_ns * 1e-9)
            );
            if ratio > DECODE_M1_GATE {
                eprintln!(
                    "FAIL: decode M=1 regressed {ratio:.2}x vs committed baseline \
                     (gate {DECODE_M1_GATE:.2}x)"
                );
                std::process::exit(1);
            }
        }
        None => println!(
            "decode_m1: {} (no committed lq_bench_decode_m1_ns baseline — gate skipped)",
            fmt_time(got_ns * 1e-9)
        ),
    }
}

fn main() {
    let _json = lq_bench::json_dump("gemm_kernels");
    let mut trace = lq_bench::trace_dump();
    // Read the committed decode baseline before any `--json` dump can
    // overwrite the snapshot at exit.
    let decode_baseline = committed_decode_m1_baseline();
    let mk = MicrokernelSet::global();
    println!(
        "microkernel variant: {} (detected best: {})",
        mk.variant().label(),
        SimdVariant::best_available().label()
    );
    if std::env::args().any(|a| a == "--smoke") {
        // ISA-dispatch smoke gate: unless LQ_FORCE_SCALAR overrides it,
        // the process-wide microkernel set must be the best variant this
        // CPU detects — a scalar fallback on a SIMD host is a silent
        // 3-8x perf regression the timing gates might miss on a quiet
        // runner.
        let forced_scalar =
            std::env::var_os("LQ_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0");
        if !forced_scalar && mk.variant() != SimdVariant::best_available() {
            eprintln!(
                "FAIL: global microkernel variant {} != detected best {}",
                mk.variant().label(),
                SimdVariant::best_available().label()
            );
            std::process::exit(1);
        }
        if forced_scalar && mk.variant() != SimdVariant::Scalar {
            eprintln!(
                "FAIL: LQ_FORCE_SCALAR set but global variant is {}",
                mk.variant().label()
            );
            std::process::exit(1);
        }
        // CI smoke gate: tiny shapes so the whole run is sub-second in
        // release mode, but enough calls that every worker sees work —
        // once per registered dequant backend, each on a fresh pool.
        let w = Mat::from_fn(128, 256, |r, c| ((r * 256 + c) as f32 * 0.11).sin());
        for backend in registry() {
            let id = backend.id();
            let weights = W4A8Weights::quantize(&w, 64, id);
            let (ratio, retries, min_jobs) = pool_balance(&weights, 256, 8, 2, 64);
            if ratio > BALANCE_GATE {
                eprintln!(
                    "FAIL[{id}]: busy-ns max/min ratio {ratio:.2} exceeds gate {BALANCE_GATE:.1}"
                );
                std::process::exit(1);
            }
            if min_jobs == 0 {
                eprintln!("FAIL[{id}]: a worker ran zero jobs in the smoke run");
                std::process::exit(1);
            }
            if retries != 0 {
                eprintln!(
                    "FAIL[{id}]: {retries} job retries on a fault-free run \
                     (spontaneous worker panic)"
                );
                std::process::exit(1);
            }
        }
        // The balance runs above dispatched real GEMMs; the dispatch
        // counters must show the selected variant actually executed.
        if !dispatch_counts()
            .iter()
            .any(|&(v, _, n)| v == mk.variant().label() && n > 0)
        {
            eprintln!(
                "FAIL: no dispatches recorded for selected variant {} \
                 (counters: {:?})",
                mk.variant().label(),
                dispatch_counts()
            );
            std::process::exit(1);
        }
        // Tensor-parallel smoke gate: 2-shard bit-exactness + shard
        // busy-balance (variant-independent, so it runs under
        // LQ_FORCE_SCALAR too).
        sharded_smoke_gate();
        // Decode-latency regression gate against the committed
        // snapshot (skipped on bootstrap runs that predate the gauge,
        // and under LQ_FORCE_SCALAR — the committed baseline is the
        // auto-selected SIMD variant's, which scalar legitimately
        // cannot meet).
        if forced_scalar {
            println!("decode_m1 gate skipped (LQ_FORCE_SCALAR)");
        } else {
            run_decode_gate(decode_baseline);
        }
        if trace.active() {
            // Trace-smoke gate: the exported Chrome JSON must validate
            // (flush panics otherwise) and every pool worker must have
            // recorded at least one job_start — round-robin placement
            // guarantees all four see work on a 256-job run.
            let events = trace.flush();
            let mut active = std::collections::BTreeSet::new();
            for ev in &events {
                if ev.kind == lq_trace::EventKind::JobStart {
                    if let lq_trace::Track::Worker(w) = ev.track {
                        active.insert(w);
                    }
                }
            }
            for w in 0..4u32 {
                if !active.contains(&w) {
                    eprintln!("FAIL: worker {w} recorded no job_start in the traced smoke run");
                    std::process::exit(1);
                }
            }
            println!(
                "trace smoke OK: {} events, job starts on all {} workers",
                events.len(),
                active.len()
            );
        }
        println!("smoke OK");
        return;
    }
    let w = Mat::from_fn(N, K, |r, c| ((r * K + c) as f32 * 0.11).sin());
    let x = Mat::from_fn(32, K, |r, c| ((r + c) as f32 * 0.07).cos());
    let qa = QuantizedActivations::quantize(&x, None);
    let lqq = PackedLqqLinear::quantize(&w, 64);
    let qoq = PackedQoqLinear::quantize(&w, 64);
    let w8 = W8A8Linear::quantize(&w);
    let w4a16 = W4A16Linear::quantize(&w, 64);
    let f16 = Fp16Linear::encode(&w);
    let f8 = Fp8Linear::encode(&w);

    println!("gemm_serial_m32 (N={N} K={K})");
    bench_case("w4a8_lqq", 10, || {
        black_box(w4a8_lqq_serial(&qa.q, &qa.scales, &lqq));
    });
    bench_case("w4a8_qoq", 10, || {
        black_box(w4a8_qoq_serial(&qa.q, &qa.scales, &qoq));
    });
    bench_case("w8a8", 10, || {
        black_box(w8a8_serial(&qa.q, &qa.scales, &w8));
    });
    bench_case("w4a16", 10, || {
        black_box(w4a16_serial(&x, &w4a16));
    });
    bench_case("fp16", 10, || {
        black_box(fp16_serial(&x, &f16));
    });
    bench_case("fp8", 10, || {
        black_box(fp8_serial(&x, &f8));
    });

    // The four registered W4A8 dequant backends on identical shapes:
    // serial (pure dequant cost) and pooled ImFP (overlap) side by
    // side — the CPU-real counterpart of the cost-model sweep.
    let workers = std::thread::available_parallelism().map_or(4, |p| p.get().min(8));
    let lg = LiquidGemm::builder()
        .workers(workers)
        .task_rows(16)
        .build()
        .expect("valid config");
    println!("\nbackend_sweep (N={N} K={K} M=32, serial + ImFP x {workers} workers)");
    for backend in registry() {
        let weights = W4A8Weights::quantize(&w, 64, backend.id());
        bench_case(&format!("w4a8[{}]_serial", backend.id()), 10, || {
            black_box(w4a8_serial(&qa.q, &qa.scales, weights.as_dyn()));
        });
        bench_case(&format!("w4a8[{}]_imfp", backend.id()), 10, || {
            black_box(lg.gemm(&qa.q, &qa.scales, &weights, KernelKind::ImFp));
        });
    }

    // Per-ISA-variant sweep (scalar baseline + every detected SIMD
    // family, forced via the builder): serial prefill M=32 and
    // persistent-pool decode M=1 — the EXPERIMENTS.md before/after
    // table. The auto-selected variant additionally records the
    // `lq_bench_decode_m1_ns` gauge the smoke gate compares against.
    println!("\nvariant_sweep (N={N} K={K}; serial M=32, persistent ImFP decode M=1)");
    print_header(&[("variant", 8), ("serial_m32", 11), ("decode_m1", 11)]);
    let weights = W4A8Weights::lqq(lqq.clone());
    for v in [SimdVariant::Scalar, SimdVariant::Avx2, SimdVariant::Vnni] {
        let Some(vmk) = MicrokernelSet::for_variant(v) else {
            println!("{:>8}  (not detected on this CPU)", v.label());
            continue;
        };
        let t_serial = measure_median(10, || {
            black_box(w4a8_serial_with(vmk, &qa.q, &qa.scales, &lqq));
        });
        let lgv = LiquidGemm::builder()
            .workers(workers)
            .task_rows(16)
            .force_microkernel(v)
            .build()
            .expect("detected variant builds");
        let x1 = Mat::from_fn(1, K, |_, c| (c as f32 * 0.07).cos());
        let qa1 = QuantizedActivations::quantize(&x1, None);
        const CALLS: usize = 8;
        let t_decode = measure_median(12, || {
            for _ in 0..CALLS {
                black_box(lgv.gemm(&qa1.q, &qa1.scales, &weights, KernelKind::ImFp));
            }
        }) / CALLS as f64;
        print_row(&[
            (v.label().to_string(), 8),
            (fmt_time(t_serial), 11),
            (fmt_time(t_decode), 11),
        ]);
    }
    let auto = LiquidGemm::builder()
        .workers(workers)
        .task_rows(16)
        .build()
        .expect("valid config");
    let t_decode_auto = bench_decode_m1(&auto, &weights);
    println!(
        "decode_m1 (auto-selected {}): {}",
        auto.pool().microkernels().variant().label(),
        fmt_time(t_decode_auto * 1e-9)
    );
    drop(auto);

    sharded_sweep();

    pool_amortisation(&lqq);
    let _ = pool_balance(&W4A8Weights::lqq(lqq), K, 64, 16, 24);
}
