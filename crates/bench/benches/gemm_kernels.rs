//! Microbenchmark: serial GEMM kernels across precisions (the CPU-real
//! counterpart of Figure 12's per-kernel comparison).
//!
//! Plain main (no criterion: the sandbox is offline); `--json` dumps
//! the telemetry registry to `BENCH_gemm_kernels.json`.

use std::hint::black_box;

use lq_bench::bench_case;
use lq_core::packed::{
    Fp16Linear, Fp8Linear, PackedLqqLinear, PackedQoqLinear, W4A16Linear, W8A8Linear,
};
use lq_core::serial::{
    fp16_serial, fp8_serial, w4a16_serial, w4a8_lqq_serial, w4a8_qoq_serial, w8a8_serial,
};
use lq_quant::act::QuantizedActivations;
use lq_quant::mat::Mat;

const N: usize = 512;
const K: usize = 2048;

fn main() {
    let _json = lq_bench::json_dump("gemm_kernels");
    let w = Mat::from_fn(N, K, |r, c| ((r * K + c) as f32 * 0.11).sin());
    let x = Mat::from_fn(32, K, |r, c| ((r + c) as f32 * 0.07).cos());
    let qa = QuantizedActivations::quantize(&x, None);
    let lqq = PackedLqqLinear::quantize(&w, 64);
    let qoq = PackedQoqLinear::quantize(&w, 64);
    let w8 = W8A8Linear::quantize(&w);
    let w4a16 = W4A16Linear::quantize(&w, 64);
    let f16 = Fp16Linear::encode(&w);
    let f8 = Fp8Linear::encode(&w);

    println!("gemm_serial_m32 (N={N} K={K})");
    bench_case("w4a8_lqq", 10, || {
        black_box(w4a8_lqq_serial(&qa.q, &qa.scales, &lqq));
    });
    bench_case("w4a8_qoq", 10, || {
        black_box(w4a8_qoq_serial(&qa.q, &qa.scales, &qoq));
    });
    bench_case("w8a8", 10, || {
        black_box(w8a8_serial(&qa.q, &qa.scales, &w8));
    });
    bench_case("w4a16", 10, || {
        black_box(w4a16_serial(&x, &w4a16));
    });
    bench_case("fp16", 10, || {
        black_box(fp16_serial(&x, &f16));
    });
    bench_case("fp8", 10, || {
        black_box(fp8_serial(&x, &f8));
    });
}
