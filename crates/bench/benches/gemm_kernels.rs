//! Criterion: serial GEMM kernels across precisions (the CPU-real
//! counterpart of Figure 12's per-kernel comparison).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lq_core::packed::{Fp16Linear, Fp8Linear, PackedLqqLinear, PackedQoqLinear, W4A16Linear, W8A8Linear};
use lq_core::serial::{fp16_serial, fp8_serial, w4a16_serial, w4a8_lqq_serial, w4a8_qoq_serial, w8a8_serial};
use lq_quant::act::QuantizedActivations;
use lq_quant::mat::Mat;

const N: usize = 512;
const K: usize = 2048;

fn fixtures() -> (Mat<f32>, Mat<f32>) {
    let w = Mat::from_fn(N, K, |r, c| ((r * K + c) as f32 * 0.11).sin());
    let x = Mat::from_fn(32, K, |r, c| ((r + c) as f32 * 0.07).cos());
    (w, x)
}

fn bench_kernels(c: &mut Criterion) {
    let (w, x) = fixtures();
    let qa = QuantizedActivations::quantize(&x, None);
    let lqq = PackedLqqLinear::quantize(&w, 64);
    let qoq = PackedQoqLinear::quantize(&w, 64);
    let w8 = W8A8Linear::quantize(&w);
    let w4a16 = W4A16Linear::quantize(&w, 64);
    let f16 = Fp16Linear::encode(&w);
    let f8 = Fp8Linear::encode(&w);

    let mut g = c.benchmark_group("gemm_serial_m32");
    g.throughput(Throughput::Elements((32 * N * K) as u64));
    g.bench_function(BenchmarkId::from_parameter("w4a8_lqq"), |b| {
        b.iter(|| black_box(w4a8_lqq_serial(&qa.q, &qa.scales, &lqq)));
    });
    g.bench_function(BenchmarkId::from_parameter("w4a8_qoq"), |b| {
        b.iter(|| black_box(w4a8_qoq_serial(&qa.q, &qa.scales, &qoq)));
    });
    g.bench_function(BenchmarkId::from_parameter("w8a8"), |b| {
        b.iter(|| black_box(w8a8_serial(&qa.q, &qa.scales, &w8)));
    });
    g.bench_function(BenchmarkId::from_parameter("w4a16"), |b| {
        b.iter(|| black_box(w4a16_serial(&x, &w4a16)));
    });
    g.bench_function(BenchmarkId::from_parameter("fp16"), |b| {
        b.iter(|| black_box(fp16_serial(&x, &f16)));
    });
    g.bench_function(BenchmarkId::from_parameter("fp8"), |b| {
        b.iter(|| black_box(fp8_serial(&x, &f8)));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernels
}
criterion_main!(benches);
