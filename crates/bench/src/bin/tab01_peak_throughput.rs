//! Table 1: peak token-generation throughput (tokens/s) of every
//! system × model under the 80 GB H800 budget, with the batch size at
//! which the peak occurs and the speedup over the best baseline.
//!
//! Run: `cargo run -p lq-bench --bin tab01_peak_throughput`

use lq_bench::{print_header, print_row};
use lq_models::configs::ALL_MODELS;
use lq_serving::system::{ServingSystem, SystemId};
use lq_serving::throughput::peak_throughput;
use lq_sim::specs::H800;

fn main() {
    println!("== Table 1: peak throughput (tokens/s), in:1024 out:512, 80 GB H800 ==\n");
    let mut cols = vec![("system", 14)];
    for m in &ALL_MODELS {
        cols.push((m.name, 13));
    }
    print_header(&cols);

    let mut results = vec![vec![None; ALL_MODELS.len()]; SystemId::ALL.len()];
    for (si, &id) in SystemId::ALL.iter().enumerate() {
        let sys = ServingSystem::of(id);
        let mut cells = vec![(sys.name.to_string(), 14)];
        for (mi, cfg) in ALL_MODELS.iter().enumerate() {
            let cell = match peak_throughput(&sys, &H800, cfg) {
                Some(p) => {
                    results[si][mi] = Some(p);
                    format!("{:.0} ({})", p.tokens_per_s, p.batch)
                }
                None if !sys.supports(cfg) => "NA".to_string(),
                None => "OOM".to_string(),
            };
            cells.push((cell, 13));
        }
        print_row(&cells);
    }

    // Speedup row: LiquidServe over the best of {QServe, TRT-*}.
    let liquid_idx = SystemId::ALL
        .iter()
        .position(|&s| s == SystemId::LiquidServe)
        .expect("present");
    let mut cells = vec![("Speedup".to_string(), 14)];
    for (mi, _) in ALL_MODELS.iter().enumerate() {
        let liquid = results[liquid_idx][mi];
        let best_baseline = SystemId::ALL
            .iter()
            .enumerate()
            .filter(|(si, &id)| *si != liquid_idx && id != SystemId::LiquidServeWo)
            .filter_map(|(si, _)| results[si][mi])
            .map(|p| p.tokens_per_s)
            .fold(f64::NAN, f64::max);
        let cell = match liquid {
            Some(p) if best_baseline.is_finite() => {
                format!("{:.2}x", p.tokens_per_s / best_baseline)
            }
            _ => "-".to_string(),
        };
        cells.push((cell, 13));
    }
    print_row(&cells);

    println!(
        "\npaper speedups: 1.09 / 1.14 / 1.21 / 1.63 / 0.99 / 0.98 / 1.51 / 1.30 —\n\
         expect the same shape: biggest wins on the large dense models (70B, Yi-34B),\n\
         near-parity against TRT-FP8 on LLaMA3-8B / Mistral-7B."
    );
}
