//! Section 7.1 accuracy note: LiquidQuant preserves accuracy. Without
//! checkpoints, the checkable mechanism is quantization error on
//! synthetic tensors: LQQ's grid has the same step as QoQ's, so the
//! swap is free in fidelity while 5x cheaper in instructions.
//!
//! Run: `cargo run -p lq-bench --bin tab_accuracy`

use lq_bench::{print_header, print_row};
use lq_quant::mat::Mat;
use lq_quant::metrics::error_stats;
use lq_quant::smooth::{calibrate, pipeline_error};
use lq_quant::weights::{QuantScheme, QuantizedLinear};

/// Deterministic pseudo-Gaussian weights with optional outlier channels
/// (the distribution regime SmoothQuant targets).
fn synth_weights(n: usize, k: usize, outliers: bool, seed: u64) -> Mat<f32> {
    Mat::from_fn(n, k, |r, c| {
        let h = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((r * k + c) as u64)
            .wrapping_mul(0xBF58476D1CE4E5B9);
        let u = ((h >> 33) as f32) / (1u64 << 31) as f32 - 0.5;
        let base = u + ((h >> 13) & 0xFF) as f32 / 512.0 - 0.25;
        if outliers && c % 97 == 3 {
            base * 12.0
        } else {
            base
        }
    })
}

fn main() {
    println!("== LQQ vs QoQ quantization fidelity (synthetic tensors, group 64) ==\n");
    print_header(&[
        ("tensor", 24),
        ("scheme", 6),
        ("SQNR dB", 9),
        ("MSE", 12),
        ("max|err|", 9),
        ("cosine", 8),
    ]);
    for (label, outliers) in [
        ("gaussian 512x1024", false),
        ("outlier-channel 512x1024", true),
    ] {
        let w = synth_weights(512, 1024, outliers, 42);
        for scheme in [QuantScheme::Lqq, QuantScheme::Qoq] {
            let q = QuantizedLinear::quantize(&w, 64, scheme, None);
            let e = error_stats(&w, &q.dequant_to_f32());
            print_row(&[
                (label.to_string(), 24),
                (format!("{scheme:?}"), 6),
                (format!("{:.2}", e.sqnr_db), 9),
                (format!("{:.3e}", e.mse), 12),
                (format!("{:.4}", e.max_abs), 9),
                (format!("{:.5}", e.cosine), 8),
            ]);
        }
    }

    println!("\n== SmoothQuant calibration effect (outlier activations) ==\n");
    let x = {
        let base = synth_weights(32, 1024, false, 7);
        Mat::from_fn(32, 1024, |r, c| {
            let v = *base.get(r, c);
            if c % 128 == 5 {
                v * 40.0
            } else {
                v
            }
        })
    };
    let w = synth_weights(64, 1024, false, 13);
    let ones = vec![1.0f32; 1024];
    let unsmoothed = pipeline_error(&x, &w, &ones);
    let cal = calibrate(&x, &w, 11);
    println!("  relative output MSE, no smoothing : {unsmoothed:.3e}");
    println!(
        "  relative output MSE, alpha = {:.1}  : {:.3e}  ({}x better)",
        cal.alpha,
        cal.error,
        (unsmoothed / cal.error).round()
    );
    println!("\npaper: 'results show that LQQ preserves accuracy' — here: same grid step\nas QoQ, near-identical SQNR, at 7 vs 19 instructions per 8 elements.");
}
