//! CPU-measured kernel cross-check: wall-clock the *real* Rust kernels
//! (serial LQQ vs serial QoQ vs W8A8; flat vs ExCP vs ImFP) on
//! LLaMA2-7B FFN shapes. This is the executable-layer evidence behind
//! the simulator's Figure 13 ablation: the LQQ-vs-QoQ gap and the
//! ImFP-vs-ExCP gap are real on any hardware, not artifacts of the
//! GPU model.
//!
//! Run: `cargo run --release -p lq-bench --bin cpu_kernel_bench [--quick] [--json]`
//!
//! `--json` enables telemetry for the run (pipeline stall counters and
//! span histograms go live) and writes `BENCH_cpu_kernel_bench.json` on
//! exit. Without it telemetry stays disabled, so the hot loops pay only
//! the one-relaxed-load noop path.

use lq_bench::{fmt_time, measure_median, print_header, print_row};
use lq_core::api::W4A8Weights;
use lq_core::packed::{PackedLqqLinear, PackedQoqLinear, W8A8Linear};
use lq_core::serial::{w4a8_lqq_serial, w4a8_qoq_serial, w8a8_serial};
use lq_core::{KernelKind, LiquidGemm};
use lq_quant::act::QuantizedActivations;
use lq_quant::mat::Mat;
use lq_rng::Rng;

fn main() {
    let _json = lq_bench::json_dump("cpu_kernel_bench");
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, k) = if quick { (1024, 1024) } else { (4096, 4096) };
    let batches: &[usize] = if quick { &[8, 64] } else { &[8, 32, 128, 256] };
    let reps = if quick { 2 } else { 3 };

    let mut rng = Rng::new(7);
    let w = Mat::from_fn(n, k, |_, _| rng.range_f32(-1.0, 1.0));
    let lqq = PackedLqqLinear::quantize(&w, 64);
    let qoq = PackedQoqLinear::quantize(&w, 64);
    let w8 = W8A8Linear::quantize(&w);
    let workers = std::thread::available_parallelism().map_or(4, |p| p.get().min(8));
    let lg = LiquidGemm::builder()
        .workers(workers)
        .task_rows(16)
        .stages(2 * workers)
        .build()
        .expect("valid config");
    let weights = W4A8Weights::lqq(lqq.clone());

    println!("== CPU kernel wall-clock, {n}x{k} weights, {workers} workers ==\n");
    print_header(&[
        ("batch", 6),
        ("LQQ serial", 11),
        ("QoQ serial", 11),
        ("W8A8 serial", 11),
        ("flat", 11),
        ("ExCP", 11),
        ("ImFP", 11),
        ("QoQ/LQQ", 8),
        ("ExCP/ImFP", 9),
    ]);
    for &m in batches {
        let x = Mat::from_fn(m, k, |_, _| rng.range_f32(-2.0, 2.0));
        let qa = QuantizedActivations::quantize(&x, None);
        let t_lqq = measure_median(reps, || {
            std::hint::black_box(w4a8_lqq_serial(&qa.q, &qa.scales, &lqq));
        });
        let t_qoq = measure_median(reps, || {
            std::hint::black_box(w4a8_qoq_serial(&qa.q, &qa.scales, &qoq));
        });
        let t_w8 = measure_median(reps, || {
            std::hint::black_box(w8a8_serial(&qa.q, &qa.scales, &w8));
        });
        let t_flat = measure_median(reps, || {
            std::hint::black_box(lg.gemm(&qa.q, &qa.scales, &weights, KernelKind::FlatParallel));
        });
        let t_excp = measure_median(reps, || {
            std::hint::black_box(lg.gemm(&qa.q, &qa.scales, &weights, KernelKind::ExCp));
        });
        let t_imfp = measure_median(reps, || {
            std::hint::black_box(lg.gemm(&qa.q, &qa.scales, &weights, KernelKind::ImFp));
        });
        print_row(&[
            (m.to_string(), 6),
            (fmt_time(t_lqq), 11),
            (fmt_time(t_qoq), 11),
            (fmt_time(t_w8), 11),
            (fmt_time(t_flat), 11),
            (fmt_time(t_excp), 11),
            (fmt_time(t_imfp), 11),
            (format!("{:.2}x", t_qoq / t_lqq), 8),
            (format!("{:.2}x", t_excp / t_imfp), 9),
        ]);
    }
    println!(
        "\nexpected shape: QoQ/LQQ > 1 (the emulated vsub4 costs real ALU work);\n\
         ExCP/ImFP > 1 (the materialised INT8 tile round trip costs real traffic);\n\
         W8A8 serial ~ LQQ serial (dequant is cheap enough to ride along)."
    );
}
