//! Executable serving runtime: batched continuous decode vs sequential
//! per-request decode on the *same* persistent GEMM pool, plus the
//! router overload study.
//!
//! The paper's system claim (Table 1, Figure 10) is that serving
//! throughput comes from batching decode GEMMs: one M=batch GEMM per
//! projection amortizes the full weight traversal over every running
//! sequence. This bench serves an identical saturated workload through
//! `ServingRuntime` twice — `max_batch = 1` (sequential per-request
//! decode, the no-continuous-batching baseline) and `max_batch = 8` —
//! measuring real wall-clock makespans on a real `TinyLlm`.
//!
//! The second half scales out: a 2-replica [`ServingRouter`] is driven
//! with an open-loop Poisson trace at **2× the measured sustainable
//! rate** (mixed Low/Normal/High tiers, SLO-tiered admission,
//! priority-KV preemption, tight KV budget) to show graceful
//! degradation — high-priority p99 stays bounded while low-priority
//! work is shed and preempted — and a deterministic preemption probe
//! pins the preemption path itself.
//!
//! Run: `cargo run --release -p lq-bench --bin serving_runtime \
//!   [-- --json] [-- --smoke] [-- --trace trace.json]`
//!
//! `--json` enables telemetry (batch-size / decode-step / request
//! latency histograms, per-replica serving families, KV gauges, pool
//! counters) and writes `BENCH_serving_runtime.json` on exit.
//! `--smoke` turns the overload findings into hard gates (preemptions
//! fired, every request accounted, high-p99 bound, goodput floor, zero
//! fault-free pool retries) for CI. `--trace <path>` writes a
//! Perfetto-loadable Chrome trace of the whole sweep on exit.

use lq_bench::{fmt_time, print_header, print_row};
use lq_core::{KernelKind, LiquidGemm};
use lq_engine::{ModelSpec, TinyLlm};
use lq_router::{ServingRouter, TierMix, TraceConfig};
use lq_serving::runtime::{PromptRequest, ServingRuntime};
use lq_serving::{
    AdmissionPolicy, CompletionStatus, PreemptionPolicy, Priority, Request, RunStats,
    SchedulerConfig,
};
use std::sync::Arc;

const REQUESTS: usize = 16;
const PROMPT_LEN: usize = 16;
const OUTPUT_LEN: usize = 64;
const ENGINE_PAGES: usize = 4096;

/// Replicas in the overload study.
const REPLICAS: usize = 2;
/// Offered load relative to the measured sustainable rate.
const OVERLOAD_FACTOR: f64 = 2.0;
/// Approximate arrivals in the overload trace.
const OVERLOAD_ARRIVALS: f64 = 60.0;

fn workload(spec: &ModelSpec) -> Vec<PromptRequest> {
    (0..REQUESTS as u64)
        .map(|id| {
            let prompt: Vec<usize> = (0..PROMPT_LEN)
                .map(|t| (id as usize * 17 + t * 5 + 3) % spec.vocab)
                .collect();
            PromptRequest::new(Request::new(id, PROMPT_LEN, OUTPUT_LEN, 0.0), prompt)
        })
        .collect()
}

fn serve(pool: &Arc<LiquidGemm>, spec: ModelSpec, max_batch: usize) -> RunStats {
    let mut model =
        TinyLlm::synthetic_with_engine(spec, ENGINE_PAGES, KernelKind::ImFp, Arc::clone(pool));
    let cfg = SchedulerConfig::builder()
        .max_batch(max_batch)
        .page_tokens(16)
        .build()
        .expect("valid config");
    ServingRuntime::new(cfg, ENGINE_PAGES * 16).run(&mut model, workload(&spec))
}

/// Deterministic preemption probe: a Low request sized to fill the
/// whole admission table is decoding when a High request arrives —
/// under `PriorityKv` the only way in is eviction, so `preemptions`
/// must move and both requests must still finish with a leak-free
/// table. Returns `(preemptions, finished)`.
fn preemption_probe(pool: &Arc<LiquidGemm>, spec: ModelSpec) -> (u64, usize) {
    let mut model =
        TinyLlm::synthetic_with_engine(spec, ENGINE_PAGES, KernelKind::ImFp, Arc::clone(pool));
    let prompt = |id: usize| -> Vec<usize> { (0..8).map(|t| (id * 29 + t) % spec.vocab).collect() };
    let requests = vec![
        PromptRequest::new(
            Request::new(0, 8, 24, 0.0).with_priority(Priority::Low),
            prompt(0),
        ),
        PromptRequest::new(
            Request::new(1, 8, 8, 1e-12).with_priority(Priority::High),
            prompt(1),
        ),
    ];
    let mut rt = ServingRuntime::builder()
        .page_tokens(16)
        .kv_budget_tokens(32) // Low's 8+24 reservation takes every page
        .preemption(PreemptionPolicy::PriorityKv)
        .build()
        .expect("valid probe config");
    let stats = rt.run(&mut model, requests);
    assert_eq!(rt.kv().free_pages(), rt.kv().total_pages(), "probe leaked");
    (stats.preemptions, stats.finished())
}

struct OverloadResult {
    offered_rate: f64,
    goodput: f64,
    preemptions: u64,
    low_shed: usize,
    tier_p99: [f64; 3],
    tier_finished: [usize; 3],
    completions: usize,
    arrivals: usize,
    unserved: usize,
    per_replica: Vec<(u64, f64, u64)>, // (routed, goodput, preemptions)
}

/// Drive the 2-replica router at `OVERLOAD_FACTOR`× the measured
/// sustainable rate with a 25/45/30 Low/Normal/High Poisson mix,
/// SLO-tiered admission, priority-KV preemption, and a KV budget tight
/// enough that preemption (not `max_batch`) is the binding constraint.
fn overload(pool: &Arc<LiquidGemm>, spec: ModelSpec, sustainable_tok_s: f64) -> OverloadResult {
    // Mean output below is ~12 tokens, so sustainable requests/s per
    // cluster = token throughput / mean output × replicas.
    let mean_output = 12.0;
    let sustainable_rate = sustainable_tok_s / mean_output * REPLICAS as f64;
    let offered_rate = OVERLOAD_FACTOR * sustainable_rate;
    let mut trace_cfg = TraceConfig::poisson(offered_rate, OVERLOAD_ARRIVALS / offered_rate);
    trace_cfg.mix = TierMix {
        low_pct: 25,
        normal_pct: 45,
        high_pct: 30,
    };
    trace_cfg.prompt_len = (8, 16);
    trace_cfg.output_len = (8, 16);
    let requests = trace_cfg
        .generate_prompts(0x0E_1D0A, spec.vocab)
        .expect("valid trace config");
    let arrivals = requests.len();

    let router = ServingRouter::builder()
        .replicas(REPLICAS)
        .runtime(
            ServingRuntime::builder()
                .max_batch(8)
                .page_tokens(16)
                .max_queue(8)
                .admission(AdmissionPolicy::SloTiered {
                    low_share_pct: 25,
                    normal_share_pct: 60,
                })
                .preemption(PreemptionPolicy::PriorityKv)
                .max_prefill_tokens(32)
                // 12 pages: ~6 concurrent reservations, below
                // max_batch, so KV pressure (and preemption) binds.
                .kv_budget_tokens(192),
        )
        .build()
        .expect("valid router config");
    let out = router.run(
        |_replica| {
            TinyLlm::synthetic_with_engine(spec, ENGINE_PAGES, KernelKind::ImFp, Arc::clone(pool))
        },
        requests,
    );
    let merged = out.merged();
    let tier_p99 = [
        merged.tier_latency_percentile(Priority::Low, 99.0),
        merged.tier_latency_percentile(Priority::Normal, 99.0),
        merged.tier_latency_percentile(Priority::High, 99.0),
    ];
    let tier_finished = [
        merged.tier_count(Priority::Low, CompletionStatus::Finished),
        merged.tier_count(Priority::Normal, CompletionStatus::Finished),
        merged.tier_count(Priority::High, CompletionStatus::Finished),
    ];
    OverloadResult {
        offered_rate,
        goodput: merged.goodput(),
        preemptions: merged.preemptions,
        low_shed: merged.tier_count(Priority::Low, CompletionStatus::Rejected),
        tier_p99,
        tier_finished,
        completions: merged.completions.len(),
        arrivals,
        unserved: out.unserved.len(),
        per_replica: out
            .replicas
            .iter()
            .map(|r| (r.routed, r.stats.goodput(), r.stats.preemptions))
            .collect(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let _json = lq_bench::json_dump("serving_runtime");
    // `--trace <path>`: record every pool/serving event of the sweep
    // and write a Perfetto-loadable Chrome trace on exit.
    let _trace = lq_bench::trace_dump();
    let spec = ModelSpec::tiny();
    let pool = Arc::new(
        LiquidGemm::builder()
            .workers(4)
            .build()
            .expect("valid pool config"),
    );

    println!(
        "== Continuous batching, executed: {REQUESTS} requests x {OUTPUT_LEN} tokens \
         (TinyLlm, ImFP, shared 4-worker pool) ==\n"
    );
    print_header(&[
        ("max_batch", 9),
        ("makespan", 10),
        ("tok/s", 9),
        ("decode iters", 12),
        ("mean lat", 9),
        ("p95 lat", 9),
    ]);

    let mut results = Vec::new();
    for max_batch in [1usize, 2, 4, 8] {
        // Warm-up pass so neither configuration pays first-touch costs.
        let _ = serve(&pool, spec, max_batch);
        let stats = serve(&pool, spec, max_batch);
        print_row(&[
            (format!("{max_batch}"), 9),
            (fmt_time(stats.makespan), 10),
            (format!("{:.0}", stats.throughput()), 9),
            (format!("{}", stats.decode_steps), 12),
            (fmt_time(stats.mean_latency()), 9),
            (fmt_time(stats.latency_percentile(95.0)), 9),
        ]);
        results.push((max_batch, stats));
    }

    let seq = results[0].1.throughput();
    let batched = results.last().expect("non-empty").1.throughput();
    let speedup = batched / seq;
    println!(
        "\nbatch 8 vs sequential: {speedup:.2}x token throughput \
         (one M=8 GEMM per projection amortizes the weight traversal)"
    );
    if lq_telemetry::enabled() {
        let reg = lq_telemetry::registry();
        reg.gauge("lq_bench_serving_sequential_tok_per_s").set(seq);
        reg.gauge("lq_bench_serving_batch8_tok_per_s").set(batched);
        reg.gauge("lq_bench_serving_batch8_speedup").set(speedup);
    }
    assert!(
        speedup >= 2.0,
        "batched continuous decode must be >= 2x sequential (got {speedup:.2}x)"
    );

    // == Preemption probe ==
    let (probe_preemptions, probe_finished) = preemption_probe(&pool, spec);
    println!(
        "\npreemption probe: {probe_preemptions} preemption(s), \
         {probe_finished}/2 finished (victim re-queued and completed)"
    );

    // == Router overload ==
    println!(
        "\n== Router overload: {REPLICAS} replicas, Poisson at \
         {OVERLOAD_FACTOR}x sustainable, 25/45/30 low/normal/high, \
         SLO-tiered admission + priority-KV preemption ==\n"
    );
    let ov = overload(&pool, spec, batched);
    print_header(&[("tier", 7), ("finished", 9), ("p99 lat", 10)]);
    for tier in [Priority::Low, Priority::Normal, Priority::High] {
        print_row(&[
            (tier.label().to_string(), 7),
            (format!("{}", ov.tier_finished[tier.index()]), 9),
            (fmt_time(ov.tier_p99[tier.index()]), 10),
        ]);
    }
    println!(
        "\noffered {:.0} req/s | goodput {:.0} tok/s | {} preemptions | \
         {} low-tier rejections | {}/{} completions",
        ov.offered_rate, ov.goodput, ov.preemptions, ov.low_shed, ov.completions, ov.arrivals
    );
    for (i, (routed, goodput, preempt)) in ov.per_replica.iter().enumerate() {
        println!(
            "  replica {i}: {routed} routed, {goodput:.0} tok/s goodput, {preempt} preemptions"
        );
    }
    if lq_telemetry::enabled() {
        let reg = lq_telemetry::registry();
        reg.gauge("lq_bench_router_offered_req_per_s")
            .set(ov.offered_rate);
        reg.gauge("lq_bench_router_goodput_tok_per_s")
            .set(ov.goodput);
        reg.gauge("lq_bench_router_preemptions")
            .set(ov.preemptions as f64);
        reg.gauge("lq_bench_router_low_rejected")
            .set(ov.low_shed as f64);
        for tier in [Priority::Low, Priority::Normal, Priority::High] {
            reg.gauge_with("lq_bench_router_p99_latency_s", &[("tier", tier.label())])
                .set(ov.tier_p99[tier.index()]);
        }
        for (i, (routed, goodput, preempt)) in ov.per_replica.iter().enumerate() {
            let id = i.to_string();
            let labels = [("replica", id.as_str())];
            reg.gauge_with("lq_bench_router_replica_routed", &labels)
                .set(*routed as f64);
            reg.gauge_with("lq_bench_router_replica_goodput_tok_per_s", &labels)
                .set(*goodput);
            reg.gauge_with("lq_bench_router_replica_preemptions", &labels)
                .set(*preempt as f64);
        }
    }

    if smoke {
        // CI overload gate: graceful degradation, not collapse.
        let mut fails = Vec::new();
        if probe_preemptions < 1 || probe_finished != 2 {
            fails.push(format!(
                "preemption probe: {probe_preemptions} preemptions, {probe_finished}/2 finished"
            ));
        }
        if ov.completions + ov.unserved != ov.arrivals || ov.unserved != 0 {
            fails.push(format!(
                "request accounting: {} completions + {} unserved != {} arrivals",
                ov.completions, ov.unserved, ov.arrivals
            ));
        }
        if ov.low_shed + (ov.preemptions as usize) == 0 {
            fails.push("overload shed nothing: no low-tier rejection and no preemption".into());
        }
        // High-priority p99 stays bounded by the lower tiers' service
        // under 2x overload (checked only when both sides finished
        // enough requests for a stable percentile).
        let high_p99 = ov.tier_p99[Priority::High.index()];
        let worst_lower =
            ov.tier_p99[Priority::Low.index()].max(ov.tier_p99[Priority::Normal.index()]);
        if ov.tier_finished[Priority::High.index()] >= 5
            && ov.tier_finished[Priority::Low.index()] + ov.tier_finished[Priority::Normal.index()]
                >= 5
            && high_p99 > worst_lower
        {
            fails.push(format!(
                "high-tier p99 {high_p99:.4}s above lower-tier p99 {worst_lower:.4}s"
            ));
        }
        // Goodput floor: the overloaded cluster must keep a healthy
        // fraction of its measured single-replica capacity.
        if ov.goodput < 0.3 * batched {
            fails.push(format!(
                "goodput {:.0} tok/s under 30% of capacity {batched:.0} tok/s",
                ov.goodput
            ));
        }
        if lq_telemetry::enabled() {
            let retries = lq_telemetry::registry()
                .counter("lq_pool_job_retries_total")
                .get();
            if retries != 0 {
                fails.push(format!("{retries} fault-free pool retries"));
            }
        }
        if fails.is_empty() {
            println!("\nsmoke OK: overload degraded gracefully");
        } else {
            for f in &fails {
                eprintln!("FAIL: {f}");
            }
            std::process::exit(1);
        }
    }
}
