//! Executable serving runtime: batched continuous decode vs sequential
//! per-request decode on the *same* persistent GEMM pool.
//!
//! The paper's system claim (Table 1, Figure 10) is that serving
//! throughput comes from batching decode GEMMs: one M=batch GEMM per
//! projection amortizes the full weight traversal over every running
//! sequence. This bench serves an identical saturated workload through
//! `ServingRuntime` twice — `max_batch = 1` (sequential per-request
//! decode, the no-continuous-batching baseline) and `max_batch = 8` —
//! measuring real wall-clock makespans on a real `TinyLlm`.
//!
//! Run: `cargo run --release -p lq-bench --bin serving_runtime \
//!   [-- --json] [-- --trace trace.json]`
//!
//! `--json` enables telemetry (batch-size / decode-step / request
//! latency histograms, KV gauges, pool counters) and writes
//! `BENCH_serving_runtime.json` on exit. `--trace <path>` enables
//! causal event tracing and writes a Perfetto-loadable Chrome trace
//! of the whole sweep on exit.

use lq_bench::{fmt_time, print_header, print_row};
use lq_core::{KernelKind, LiquidGemm};
use lq_engine::{ModelSpec, TinyLlm};
use lq_serving::runtime::{PromptRequest, ServingRuntime};
use lq_serving::{Request, RunStats, SchedulerConfig};
use std::sync::Arc;

const REQUESTS: usize = 16;
const PROMPT_LEN: usize = 16;
const OUTPUT_LEN: usize = 64;
const ENGINE_PAGES: usize = 4096;

fn workload(spec: &ModelSpec) -> Vec<PromptRequest> {
    (0..REQUESTS as u64)
        .map(|id| {
            let prompt: Vec<usize> = (0..PROMPT_LEN)
                .map(|t| (id as usize * 17 + t * 5 + 3) % spec.vocab)
                .collect();
            PromptRequest::new(Request::new(id, PROMPT_LEN, OUTPUT_LEN, 0.0), prompt)
        })
        .collect()
}

fn serve(pool: &Arc<LiquidGemm>, spec: ModelSpec, max_batch: usize) -> RunStats {
    let mut model =
        TinyLlm::synthetic_with_engine(spec, ENGINE_PAGES, KernelKind::ImFp, Arc::clone(pool));
    let cfg = SchedulerConfig::builder()
        .max_batch(max_batch)
        .page_tokens(16)
        .build()
        .expect("valid config");
    ServingRuntime::new(cfg, ENGINE_PAGES * 16).run(&mut model, workload(&spec))
}

fn main() {
    let _json = lq_bench::json_dump("serving_runtime");
    // `--trace <path>`: record every pool/serving event of the sweep
    // and write a Perfetto-loadable Chrome trace on exit.
    let _trace = lq_bench::trace_dump();
    let spec = ModelSpec::tiny();
    let pool = Arc::new(
        LiquidGemm::builder()
            .workers(4)
            .build()
            .expect("valid pool config"),
    );

    println!(
        "== Continuous batching, executed: {REQUESTS} requests x {OUTPUT_LEN} tokens \
         (TinyLlm, ImFP, shared 4-worker pool) ==\n"
    );
    print_header(&[
        ("max_batch", 9),
        ("makespan", 10),
        ("tok/s", 9),
        ("decode iters", 12),
        ("mean lat", 9),
        ("p95 lat", 9),
    ]);

    let mut results = Vec::new();
    for max_batch in [1usize, 2, 4, 8] {
        // Warm-up pass so neither configuration pays first-touch costs.
        let _ = serve(&pool, spec, max_batch);
        let stats = serve(&pool, spec, max_batch);
        print_row(&[
            (format!("{max_batch}"), 9),
            (fmt_time(stats.makespan), 10),
            (format!("{:.0}", stats.throughput()), 9),
            (format!("{}", stats.decode_steps), 12),
            (fmt_time(stats.mean_latency()), 9),
            (fmt_time(stats.latency_percentile(95.0)), 9),
        ]);
        results.push((max_batch, stats));
    }

    let seq = results[0].1.throughput();
    let batched = results.last().expect("non-empty").1.throughput();
    let speedup = batched / seq;
    println!(
        "\nbatch 8 vs sequential: {speedup:.2}x token throughput \
         (one M=8 GEMM per projection amortizes the weight traversal)"
    );
    if lq_telemetry::enabled() {
        let reg = lq_telemetry::registry();
        reg.gauge("lq_bench_serving_sequential_tok_per_s").set(seq);
        reg.gauge("lq_bench_serving_batch8_tok_per_s").set(batched);
        reg.gauge("lq_bench_serving_batch8_speedup").set(speedup);
    }
    assert!(
        speedup >= 2.0,
        "batched continuous decode must be >= 2x sequential (got {speedup:.2}x)"
    );
}
