//! Figure 11: token-generation throughput at fixed batch sizes 16 and
//! 128 on LLaMA2-7B and LLaMA2-70B (missing bars = OOM).
//!
//! Run: `cargo run -p lq-bench --bin fig11_fixed_batch`

use lq_bench::{print_header, print_row};
use lq_models::configs::{LLAMA2_70B, LLAMA2_7B};
use lq_serving::system::{ServingSystem, SystemId};
use lq_serving::throughput::{max_feasible_batch, throughput_at_batch, INPUT_LEN, OUTPUT_LEN};
use lq_sim::specs::H800;

fn main() {
    for cfg in [&LLAMA2_7B, &LLAMA2_70B] {
        println!(
            "\n== Figure 11: {} throughput at fixed batch (tokens/s) ==\n",
            cfg.name
        );
        print_header(&[("system", 14), ("batch 16", 10), ("batch 128", 10)]);
        for id in SystemId::ALL {
            let sys = ServingSystem::of(id);
            let mut cells = vec![(sys.name.to_string(), 14)];
            for batch in [16usize, 128] {
                let cell = if !sys.supports(cfg) {
                    "NA".to_string()
                } else {
                    let feasible = max_feasible_batch(
                        &sys,
                        cfg,
                        H800.mem_capacity as f64,
                        INPUT_LEN,
                        OUTPUT_LEN,
                    );
                    if feasible < batch {
                        "OOM".to_string()
                    } else {
                        let t = throughput_at_batch(&sys, &H800, cfg, batch, INPUT_LEN, OUTPUT_LEN);
                        format!("{t:.0}")
                    }
                };
                cells.push((cell, 10));
            }
            print_row(&cells);
        }
    }
    println!("\npaper shape: LiquidServe leads at both batch sizes; FP16 OOMs on 70B.");
}
