//! Figure 1: key hardware metrics of A100/H100 (and H800) and the
//! roofline for decode GEMM layers per precision configuration.
//!
//! Run: `cargo run -p lq-bench --bin fig01_roofline`

use lq_bench::{print_header, print_row};
use lq_sim::roofline::{attainable, ridge_batch, PRECISIONS};
use lq_sim::specs::{A100, H100, H800};

fn main() {
    println!("== Figure 1a: peak hardware metrics ==\n");
    print_header(&[
        ("GPU", 6),
        ("HBM GB/s", 10),
        ("INT8 TOPS", 10),
        ("FP16 TFLOPS", 12),
        ("FP8 TFLOPS", 11),
        ("CUDA INT TOPS", 14),
    ]);
    for spec in [A100, H100, H800] {
        print_row(&[
            (spec.name.to_string(), 6),
            (format!("{:.0}", spec.mem_bw / 1e9), 10),
            (format!("{:.0}", spec.tc_int8 / 1e12), 10),
            (format!("{:.1}", spec.tc_fp16 / 1e12), 12),
            (format!("{:.0}", spec.tc_fp8 / 1e12), 11),
            (format!("{:.1}", spec.cuda_int / 1e12), 14),
        ]);
    }

    for spec in [A100, H100] {
        println!(
            "\n== Figure 1b: roofline on {} (attainable TOPS by batch) ==\n",
            spec.name
        );
        let batches = [1usize, 4, 16, 32, 64, 128, 150, 256, 300, 512, 1024];
        let mut cols = vec![("batch", 6)];
        for p in PRECISIONS {
            if spec.tc_throughput(p.tc) > 0.0 {
                cols.push((p.name, 8));
            }
        }
        print_header(&cols);
        for &m in &batches {
            let mut cells = vec![(m.to_string(), 6)];
            for p in PRECISIONS {
                if spec.tc_throughput(p.tc) > 0.0 {
                    cells.push((format!("{:.0}", attainable(&spec, p, m) / 1e12), 8));
                }
            }
            print_row(&cells);
        }
        println!("\nridge (memory→compute transition) batch sizes:");
        for p in PRECISIONS {
            if spec.tc_throughput(p.tc) > 0.0 {
                println!("  {:8} M* = {:.0}", p.name, ridge_batch(&spec, p));
            }
        }
    }
    println!("\npaper check: W8A8 transitions at ~300 (H100) / ~156 (A100); W4A8 halves both.");
}
