//! Figure 13: ablation — baseline → +LQQ → +ExCP / +ImFP — on the
//! warp-group pipeline simulator (GPU-shaped) and cross-checked by the
//! measured CPU kernels (see `cpu_kernel_bench` for wall-clock).
//!
//! Run: `cargo run -p lq-bench --bin fig13_ablation [-- --json]`
//!
//! `--json` enables telemetry (per-resource sim busy-time gauges) and
//! writes `BENCH_fig13_ablation.json` on exit.

use lq_bench::{fmt_time, print_header, print_row, BATCH_SWEEP};
use lq_sim::pipeline_sim::ablation;
use lq_sim::specs::H800;

fn main() {
    let _json = lq_bench::json_dump("fig13_ablation");
    println!("== Figure 13: pipeline ablation on the H800 model (FFN-tile stream) ==\n");
    print_header(&[
        ("batch", 6),
        ("Baseline", 10),
        ("+LQQ", 10),
        ("+LQQ+ExCP", 10),
        ("+LQQ+ImFP", 10),
        ("LQQ gain", 9),
        ("ImFP gain", 9),
    ]);
    let iters = 512;
    for &m in &BATCH_SWEEP {
        let r = ablation(&H800, m, iters);
        print_row(&[
            (m.to_string(), 6),
            (fmt_time(r.baseline), 10),
            (fmt_time(r.lqq), 10),
            (fmt_time(r.lqq_excp), 10),
            (fmt_time(r.lqq_imfp), 10),
            (format!("{:.2}x", r.baseline / r.lqq), 9),
            (format!("{:.2}x", r.lqq / r.lqq_imfp), 9),
        ]);
    }
    println!(
        "\npaper shape: LQQ helps little when memory-bound, up to ~1.29x when\n\
         compute-bound; ExCP *hurts* at small batch (round-trip + sync) and only\n\
         helps at large batch; ImFP improves or matches at every batch size."
    );
}
