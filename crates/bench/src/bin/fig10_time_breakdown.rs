//! Figure 10: per-decode-step time breakdown (GEMM / Attention /
//! Others) for LLaMA2-7B, LLaMA2-70B, LLaMA3-8B, and Mistral-7B at each
//! system's Table-1 peak batch size.
//!
//! Run: `cargo run -p lq-bench --bin fig10_time_breakdown`

use lq_bench::{fmt_time, print_header, print_row};
use lq_models::configs::{LLAMA2_70B, LLAMA2_7B, LLAMA3_8B, MISTRAL_7B};
use lq_serving::decode::decode_step;
use lq_serving::system::{ServingSystem, SystemId};
use lq_serving::throughput::{peak_throughput, INPUT_LEN, OUTPUT_LEN};
use lq_sim::specs::H800;

fn main() {
    let mean_ctx = INPUT_LEN + OUTPUT_LEN / 2;
    for cfg in [&LLAMA2_7B, &LLAMA2_70B, &LLAMA3_8B, &MISTRAL_7B] {
        println!(
            "\n== Figure 10: {} decode-step breakdown at Table-1 batch ==\n",
            cfg.name
        );
        print_header(&[
            ("system", 14),
            ("batch", 6),
            ("GEMM", 10),
            ("Attention", 10),
            ("Others", 10),
            ("total", 10),
            ("GEMM %", 7),
        ]);
        for id in SystemId::ALL {
            let sys = ServingSystem::of(id);
            let Some(peak) = peak_throughput(&sys, &H800, cfg) else {
                print_row(&[
                    (sys.name.to_string(), 14),
                    ("-".to_string(), 6),
                    (if sys.supports(cfg) { "OOM" } else { "NA" }.to_string(), 10),
                    (String::new(), 10),
                    (String::new(), 10),
                    (String::new(), 10),
                    (String::new(), 7),
                ]);
                continue;
            };
            let b = decode_step(&sys, &H800, cfg, peak.batch, mean_ctx);
            print_row(&[
                (sys.name.to_string(), 14),
                (peak.batch.to_string(), 6),
                (fmt_time(b.gemm), 10),
                (fmt_time(b.attention), 10),
                (fmt_time(b.others), 10),
                (fmt_time(b.total()), 10),
                (format!("{:.0}%", 100.0 * b.gemm_share()), 7),
            ]);
        }
    }
    println!(
        "\npaper shape: LiquidServe's GEMM slice is on par with or smaller than every\n\
         baseline's (1.90x faster than QServe on LLaMA2-7B), while attention grows\n\
         with each system's achievable batch."
    );
}
