//! Section 3.3 "Implication on LLM Serving": hardware-trend projection
//! of the memory→compute transitions and the dequantization budget.
//!
//! Run: `cargo run -p lq-bench --bin tab_hw_trends`

use lq_bench::{print_header, print_row};
use lq_sim::specs::{A100, H100, H800};
use lq_sim::trends::{scaled_gpu, trend_row};

fn main() {
    println!("== Hardware-trend projection (paper §3.3) ==\n");
    let next = scaled_gpu(&H100, "Next(2.5x/1.5x)", 2.5, 1.5);
    let nextnext = scaled_gpu(&H100, "Next2(6x/2.2x)", 6.0, 2.2);
    print_header(&[
        ("GPU", 16),
        ("W8A8 M*", 9),
        ("W4A8 M*", 9),
        ("alpha budget", 13),
        ("LQQ headroom", 13),
    ]);
    for spec in [A100, H100, H800, next, nextnext] {
        let r = trend_row(&spec);
        print_row(&[
            (r.name.to_string(), 16),
            (format!("{:.0}", r.w8a8_transition), 9),
            (format!("{:.0}", r.w4a8_transition), 9),
            (format!("{:.2}", r.alpha_budget), 13),
            (format!("{:.1}x", r.lqq_headroom), 13),
        ]);
    }
    println!(
        "\nreading: tensor-core throughput outgrows HBM generation over generation,\n\
         pushing the batch needed to saturate compute ever higher (A100: 156 → H100:\n\
         295 → projected 492+). W4A8 halves every threshold, and LiquidQuant's\n\
         α = 0.875 keeps a >4x margin under the overlap budget on every projected\n\
         part — the paper's case for hardware-efficient W4A8 as a durable design."
    );
}
