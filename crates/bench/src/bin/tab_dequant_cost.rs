//! Sections 3.2 / 5.3: live instruction audit of both dequantization
//! paths, counted by executing the emulated register ops.
//!
//! Run: `cargo run -p lq-bench --bin tab_dequant_cost`

use lq_bench::{print_header, print_row};
use lq_quant::lqq::LqqGroup;
use lq_quant::qoq::QoqGroup;
use lq_swar::audit::{CountingAlu, InstrClass};
use lq_swar::unpack::pack8_u4;

fn main() {
    // A representative group of level-1 INT8 weights.
    let group: [i8; 8] = [-119, -64, -13, 0, 7, 42, 88, 119];

    let (lqq, lqq_codes) = LqqGroup::quantize(&group);
    let (qoq, qoq_codes) = QoqGroup::quantize(&group);
    let word_lqq = pack8_u4(lqq_codes.clone().try_into().expect("8 codes"));
    let word_qoq = pack8_u4(qoq_codes.clone().try_into().expect("8 codes"));

    let mut alu_lqq = CountingAlu::new();
    let out_lqq = lqq.dequant8_ordered(&mut alu_lqq, word_lqq);
    let mut alu_qoq = CountingAlu::new();
    let out_qoq = qoq.dequant8_ordered(&mut alu_qoq, word_qoq);

    println!("== Dequantization instruction audit (8 elements / packed register) ==\n");
    print_header(&[("path", 28), ("total", 6), ("per-elem", 9), ("mix", 40)]);
    print_row(&[
        ("LiquidQuant (IMAD+XOR)".to_string(), 28),
        (alu_lqq.count().total().to_string(), 6),
        (format!("{:.3}", alu_lqq.count().alpha(8)), 9),
        (alu_lqq.count().to_string(), 40),
    ]);
    print_row(&[
        ("QServe QoQ (vsub4 emulated)".to_string(), 28),
        (alu_qoq.count().total().to_string(), 6),
        (format!("{:.3}", alu_qoq.count().alpha(8)), 9),
        (alu_qoq.count().to_string(), 40),
    ]);
    let ratio = alu_qoq.count().total() as f64 / alu_lqq.count().total() as f64;
    println!("\nQoQ / LQQ instruction ratio: {ratio:.2}x  (paper: 7 vs 19 per 8 elements)");

    println!("\nlogic-class detail (the emulated vsub4 storm):");
    for c in InstrClass::ALL {
        println!(
            "  {:5} LQQ {:>2}  QoQ {:>2}",
            c.mnemonic(),
            alu_lqq.count().of(c),
            alu_qoq.count().of(c)
        );
    }

    println!("\ncorrectness (dequantized INT8 values):");
    println!("  source : {group:?}");
    println!("  LQQ    : {out_lqq:?}");
    println!("  QoQ    : {out_qoq:?}");
    for (i, &g) in group.iter().enumerate() {
        assert!((i16::from(out_lqq[i]) - i16::from(g)).abs() <= i16::from(lqq.s_u8));
        assert!((i16::from(out_qoq[i]) - i16::from(g)).abs() <= i16::from(qoq.s_u8) + 1);
    }
    println!("  both within one quantization step of the source.");
}
