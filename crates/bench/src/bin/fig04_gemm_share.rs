//! Figure 4: share of end-to-end inference time spent in (FFN + PROJ)
//! GEMMs for LLaMA2-7B and Mixtral-8×7B, input lengths 128 and 1024,
//! batch 4–256.
//!
//! Run: `cargo run -p lq-bench --bin fig04_gemm_share`

use lq_bench::{print_header, print_row, BATCH_SWEEP};
use lq_models::configs::{LLAMA2_7B, MIXTRAL_8X7B};
use lq_models::ModelConfig;
use lq_serving::decode::{decode_step, prefill_time, step_gemm_time};
use lq_serving::system::{ServingSystem, SystemId};
use lq_sim::specs::H800;

/// GEMM share of a whole request (prefill + all decode steps).
fn gemm_share(
    sys: &ServingSystem,
    cfg: &ModelConfig,
    batch: usize,
    in_len: usize,
    out_len: usize,
) -> f64 {
    let mean_ctx = in_len + out_len / 2;
    let step = decode_step(sys, &H800, cfg, batch, mean_ctx);
    let decode_total = step.total() * out_len as f64;
    let decode_gemm = step.gemm * out_len as f64;
    let prefill_total = prefill_time(sys, &H800, cfg, batch, in_len);
    let prefill_gemm = step_gemm_time(sys, &H800, cfg, batch * in_len);
    (decode_gemm + prefill_gemm) / (decode_total + prefill_total)
}

fn main() {
    // The paper measures the baseline systems here (W8A8 for LLaMA2-7B,
    // FP8 for Mixtral) — this is the motivation figure.
    let cases = [
        (&LLAMA2_7B, SystemId::TrtW8A8, "W8A8"),
        (&MIXTRAL_8X7B, SystemId::TrtFp8, "FP8"),
    ];
    for (in_len, out_len) in [(128usize, 128usize), (1024, 512)] {
        println!("\n== Figure 4: GEMM share of inference, in:{in_len} out:{out_len} ==\n");
        let mut cols = vec![("batch", 6)];
        for (cfg, _, prec) in &cases {
            cols.push((
                Box::leak(format!("{} ({prec})", cfg.name).into_boxed_str()),
                18,
            ));
        }
        print_header(&cols);
        for &b in &BATCH_SWEEP {
            let mut cells = vec![(b.to_string(), 6)];
            for (cfg, id, _) in &cases {
                let sys = ServingSystem::of(*id);
                let share = gemm_share(&sys, cfg, b, in_len, out_len);
                cells.push((format!("{:.0}%", share * 100.0), 18));
            }
            print_row(&cells);
        }
    }
    println!(
        "\npaper shape: GEMM dominates at small batch; stays >20% at large batch with\n\
         long sequences on LLaMA2-7B; remains the primary contributor on Mixtral\n\
         (per-expert GEMMs)."
    );
}
