//! Figure 5: average per-layer GEMM latency during decoding, batch
//! 4–256, on LLaMA2-7B/13B/70B and Mixtral-8×7B, across six systems.
//!
//! Run: `cargo run -p lq-bench --bin fig05_gemm_latency`

use lq_bench::{fmt_time, print_header, print_row, BATCH_SWEEP};
use lq_models::configs::{LLAMA2_13B, LLAMA2_70B, LLAMA2_7B, MIXTRAL_8X7B};
use lq_models::{decode_layer_shapes, ModelConfig};
use lq_sim::kernel_model::{KernelModel, SystemKind};
use lq_sim::specs::H800;

/// Systems with a kernel for the model (QServe and TRT-W8A8 lack MoE
/// support; the paper's Figure 5 Mixtral panel shows FP8/W4A16 only).
fn systems_for(cfg: &ModelConfig) -> Vec<SystemKind> {
    if cfg.moe.is_some() {
        vec![
            SystemKind::LiquidGemm,
            SystemKind::TrtW4A16,
            SystemKind::TrtFp8,
            SystemKind::TrtFp16,
        ]
    } else {
        SystemKind::ALL.to_vec()
    }
}

fn layer_gemm_latency(kind: SystemKind, cfg: &ModelConfig, m: usize) -> f64 {
    let km = KernelModel::of(kind);
    let shapes = decode_layer_shapes(cfg, m);
    let mut t = km.layer_latency(&H800, &shapes.dense);
    if let Some((grouped, experts)) = &shapes.grouped {
        for &g in grouped {
            t += km.grouped_latency(&H800, g, *experts);
        }
    }
    t
}

fn main() {
    for cfg in [&LLAMA2_7B, &LLAMA2_13B, &LLAMA2_70B, &MIXTRAL_8X7B] {
        println!(
            "\n== Figure 5: {} per-layer GEMM latency (H800 model) ==\n",
            cfg.name
        );
        let systems = systems_for(cfg);
        let mut cols = vec![("batch", 6)];
        for k in &systems {
            cols.push((k.name(), 11));
        }
        print_header(&cols);
        for &m in &BATCH_SWEEP {
            let mut cells = vec![(m.to_string(), 6)];
            for &k in &systems {
                cells.push((fmt_time(layer_gemm_latency(k, cfg, m)), 11));
            }
            print_row(&cells);
        }
        // Shape check: the headline speedup at batch 256.
        if cfg.moe.is_none() {
            let s = layer_gemm_latency(SystemKind::QServe, cfg, 256)
                / layer_gemm_latency(SystemKind::LiquidGemm, cfg, 256);
            println!(
                "\n  LiquidGEMM speedup over QServe at batch 256: {s:.2}x (paper: 2.75-2.90x)"
            );
        } else {
            let fp8 = layer_gemm_latency(SystemKind::TrtFp8, cfg, 256)
                / layer_gemm_latency(SystemKind::LiquidGemm, cfg, 256);
            println!(
                "\n  LiquidGEMM speedup over TRT-FP8 at batch 256: {fp8:.2}x (paper: 1.41-1.84x)"
            );
        }
    }
}
