//! Supplementary: the continuous-batching scheduler under load —
//! sustained throughput and latency percentiles for LiquidServe vs the
//! baselines on LLaMA2-7B, with Poisson-ish staggered arrivals.
//!
//! (Not a paper table; it demonstrates the serving loop the Table-1
//! closed form abstracts, with the same paged-KV admission policy.)
//!
//! Run: `cargo run -p lq-bench --bin tab_scheduler [-- --json]`
//!
//! `--json` enables telemetry (decode-step histograms, KV gauges,
//! admission counters) and writes `BENCH_tab_scheduler.json` on exit.

use lq_bench::{fmt_time, print_header, print_row};
use lq_models::configs::LLAMA2_7B;
use lq_serving::scheduler::{run_schedule, Request, SchedulerConfig};
use lq_serving::system::{ServingSystem, SystemId};
use lq_sim::specs::H800;

/// Deterministic staggered arrivals at a given mean rate (requests/s).
fn arrivals(n: usize, rate: f64) -> Vec<Request> {
    let mut t = 0.0f64;
    let mut state = 0x9E37_79B9u64;
    (0..n as u64)
        .map(|id| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Exponential-ish inter-arrival via inverse CDF of a
            // uniform sample.
            let u = (state % 10_000) as f64 / 10_000.0;
            t += -(1.0 - u.min(0.9999)).ln() / rate;
            Request::new(id, 1024, 512, t)
        })
        .collect()
}

fn main() {
    let _json = lq_bench::json_dump("tab_scheduler");
    println!("== Continuous batching under load: LLaMA2-7B, 200 requests ==\n");
    print_header(&[
        ("system", 14),
        ("rate r/s", 9),
        ("tok/s", 8),
        ("peak batch", 11),
        ("mean lat", 10),
        ("p95 lat", 10),
    ]);
    for id in [
        SystemId::LiquidServe,
        SystemId::LiquidServeWo,
        SystemId::QServe,
        SystemId::TrtW8A8,
    ] {
        let sys = ServingSystem::of(id);
        for rate in [2.0f64, 8.0, 32.0] {
            let reqs = arrivals(200, rate);
            let stats = run_schedule(&sys, &H800, &LLAMA2_7B, SchedulerConfig::default(), &reqs);
            print_row(&[
                (sys.name.to_string(), 14),
                (format!("{rate:.0}"), 9),
                (format!("{:.0}", stats.throughput()), 8),
                (stats.peak_batch.to_string(), 11),
                (fmt_time(stats.mean_latency()), 10),
                (fmt_time(stats.latency_percentile(95.0)), 10),
            ]);
        }
    }
    println!(
        "\nreading: at low arrival rates all systems are latency-bound and similar;\n\
         as load rises, the faster GEMM lets LiquidServe clear batches sooner,\n\
         holding lower tail latency at the same offered load."
    );
}
