//! Section 3.3 derived quantities: memory→compute transition batch
//! sizes and the dequantization instruction budgets (α) that still
//! permit full overlap.
//!
//! Run: `cargo run -p lq-bench --bin tab_transition_points`

use lq_bench::{print_header, print_row};
use lq_sim::specs::{TcKind, A100, H100, H800};
use lq_swar::audit::{LQQ_BUDGET, QOQ_BUDGET};

fn main() {
    println!("== Memory→compute transition batch sizes (paper §3.3) ==\n");
    print_header(&[("GPU", 6), ("W8A8", 8), ("W4A8", 8), ("FP16", 8)]);
    for spec in [A100, H100, H800] {
        print_row(&[
            (spec.name.to_string(), 6),
            (
                format!("{:.0}", spec.transition_batch(TcKind::Int8, 1.0)),
                8,
            ),
            (
                format!("{:.0}", spec.transition_batch(TcKind::Int8, 0.5)),
                8,
            ),
            (
                format!("{:.0}", spec.transition_batch(TcKind::Fp16, 2.0)),
                8,
            ),
        ]);
    }
    println!("\npaper: 300 / 150 on H100, 156 (W8A8) on A100.\n");

    println!("== Dequantization budgets on H100 (α = instructions/element) ==\n");
    let mem = H100.alpha_budget_memory_bound(0.5);
    let m_star = H100.transition_batch(TcKind::Int8, 0.5).round() as usize;
    let comp = H100.alpha_budget_compute_bound(TcKind::Int8, m_star, 256);
    println!("  memory-bound budget  (T_DQ <= T_LD) : alpha <= {mem:.2}   (paper: 5.07)");
    println!(
        "  compute-bound budget (T_DQ <= T_MMA): alpha <= {comp:.2}   (paper: 5.05, M = {m_star})"
    );
    println!();
    for b in [LQQ_BUDGET, QOQ_BUDGET] {
        let fits = if b.alpha <= comp.min(mem) {
            "fits"
        } else {
            "EXCEEDS with addressing"
        };
        println!(
            "  {:28} alpha = {:.3} ({} instrs / 8 elems) -> {fits}",
            b.name, b.alpha, b.instrs_per_8
        );
    }
    println!(
        "\nheadroom: LQQ uses {:.0}% of the overlap budget; QoQ uses {:.0}% before\n\
         address arithmetic, which pushes it past the threshold in practice.",
        100.0 * LQQ_BUDGET.alpha / mem,
        100.0 * QOQ_BUDGET.alpha / mem
    );
}
