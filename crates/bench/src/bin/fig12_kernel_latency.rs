//! Figure 12: isolated GEMM-kernel latency on the FFN layer GEMMs,
//! batch 4–256, across systems (the unified kernel-benchmark framework).
//!
//! Run: `cargo run -p lq-bench --bin fig12_kernel_latency`

use lq_bench::{fmt_time, print_header, print_row, BATCH_SWEEP};
use lq_models::configs::{LLAMA2_13B, LLAMA2_70B, LLAMA2_7B, MIXTRAL_8X7B};
use lq_models::ModelConfig;
use lq_sim::cost_model::GemmShape;
use lq_sim::kernel_model::{KernelModel, SystemKind};
use lq_sim::specs::H800;

fn ffn_latency(kind: SystemKind, cfg: &ModelConfig, m: usize) -> f64 {
    let km = KernelModel::of(kind);
    match cfg.moe {
        None => {
            let gate_up = GemmShape {
                m,
                n: 2 * cfg.intermediate,
                k: cfg.hidden,
            };
            let down = GemmShape {
                m,
                n: cfg.hidden,
                k: cfg.intermediate,
            };
            km.latency(&H800, gate_up) + km.latency(&H800, down)
        }
        Some(moe) => {
            let m_e = (m * moe.top_k).div_ceil(moe.experts).max(1);
            let gate_up = GemmShape {
                m: m_e,
                n: 2 * cfg.intermediate,
                k: cfg.hidden,
            };
            let down = GemmShape {
                m: m_e,
                n: cfg.hidden,
                k: cfg.intermediate,
            };
            km.grouped_latency(&H800, gate_up, moe.experts)
                + km.grouped_latency(&H800, down, moe.experts)
        }
    }
}

fn main() {
    for cfg in [&LLAMA2_7B, &LLAMA2_13B, &LLAMA2_70B, &MIXTRAL_8X7B] {
        println!(
            "\n== Figure 12: {} FFN GEMM latency (H800 model) ==\n",
            cfg.name
        );
        let systems: Vec<SystemKind> = if cfg.moe.is_some() {
            vec![
                SystemKind::LiquidGemm,
                SystemKind::TrtW4A16,
                SystemKind::TrtFp8,
                SystemKind::TrtFp16,
            ]
        } else {
            SystemKind::ALL.to_vec()
        };
        let mut cols = vec![("batch", 6)];
        for k in &systems {
            cols.push((k.name(), 11));
        }
        print_header(&cols);
        for &m in &BATCH_SWEEP {
            let mut cells = vec![(m.to_string(), 6)];
            for &k in &systems {
                cells.push((fmt_time(ffn_latency(k, cfg, m)), 11));
            }
            print_row(&cells);
        }
        if cfg.moe.is_none() {
            let s256 = ffn_latency(SystemKind::QServe, cfg, 256)
                / ffn_latency(SystemKind::LiquidGemm, cfg, 256);
            println!("\n  LiquidGEMM over QServe at 256: {s256:.2}x (paper: 2.75/2.87/2.90x)");
        } else {
            for m in [8usize, 64, 256] {
                let fp8 = ffn_latency(SystemKind::TrtFp8, cfg, m)
                    / ffn_latency(SystemKind::LiquidGemm, cfg, m);
                let w4a16 = ffn_latency(SystemKind::TrtW4A16, cfg, m)
                    / ffn_latency(SystemKind::LiquidGemm, cfg, m);
                println!(
                    "\n  batch {m}: LiquidGEMM vs TRT-FP8 {fp8:.2}x, vs TRT-W4A16 {w4a16:.2}x \
                     (paper: TRT wins below 32, LiquidGEMM 1.41-1.84x / 1.12-2.53x above)"
                );
            }
        }
    }
}
