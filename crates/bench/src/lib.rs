//! # lq-bench — benchmark harnesses for every table and figure
//!
//! One binary per experiment (see `src/bin/`), each printing the rows or
//! series of the corresponding table/figure in the paper:
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `fig01_roofline` | Figure 1: hardware metrics + roofline |
//! | `tab_transition_points` | §3.3 transition batches and α budgets |
//! | `tab_dequant_cost` | §3.2/§5.3 dequant instruction audit |
//! | `fig04_gemm_share` | Figure 4: GEMM share of inference time |
//! | `fig05_gemm_latency` | Figure 5: per-layer GEMM latency vs batch |
//! | `tab01_peak_throughput` | Table 1: peak serving throughput |
//! | `fig10_time_breakdown` | Figure 10: per-layer time breakdown |
//! | `fig11_fixed_batch` | Figure 11: throughput at fixed batch |
//! | `fig12_kernel_latency` | Figure 12: kernel latency vs batch |
//! | `fig13_ablation` | Figure 13: LQQ / ExCP / ImFP ablation |
//! | `tab_accuracy` | §7.1 accuracy note: LQQ vs QoQ error |
//! | `cpu_kernel_bench` | CPU-measured kernel cross-check |
//! | `tab_scheduler` | continuous-batching scheduler under load (simulated) |
//! | `serving_runtime` | executable batched vs sequential continuous decode (§6 analogue) |
//!
//! Plain-main microbenchmarks live in `benches/` (run with
//! `cargo bench`; the offline sandbox has no criterion, so they use
//! [`measure_median`]).
//!
//! Binaries accept `--json`: it enables [`lq_telemetry`] for the run
//! and dumps the global registry as `BENCH_<name>.json` on exit (see
//! [`json_dump`]). The pool and serving harnesses additionally accept
//! `--trace <path>`: it enables [`lq_trace`] and writes a
//! Perfetto-loadable Chrome trace-event JSON on exit (see
//! [`trace_dump`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

/// Format seconds with an adaptive unit.
#[must_use]
pub fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.2} us", s * 1e6)
    } else {
        format!("{:.0} ns", s * 1e9)
    }
}

/// Print a header row followed by a rule.
pub fn print_header(cols: &[(&str, usize)]) {
    let mut line = String::new();
    for (name, w) in cols {
        line.push_str(&format!("{name:>w$}  ", w = *w));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len()));
}

/// Print one row of right-aligned cells.
pub fn print_row(cells: &[(String, usize)]) {
    let mut line = String::new();
    for (cell, w) in cells {
        line.push_str(&format!("{cell:>w$}  ", w = *w));
    }
    println!("{line}");
}

/// Wall-clock the median of `reps` runs of `f` (seconds), after one
/// warm-up run.
pub fn measure_median(reps: usize, mut f: impl FnMut()) -> f64 {
    assert!(reps >= 1);
    f(); // warm-up
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

/// The batch sweep the paper's latency figures use.
pub const BATCH_SWEEP: [usize; 7] = [4, 8, 16, 32, 64, 128, 256];

/// Run `f` as one named microbenchmark: median of `reps` timed runs,
/// printed as a row. Returns the median seconds.
pub fn bench_case(name: &str, reps: usize, f: impl FnMut()) -> f64 {
    let t = measure_median(reps, f);
    println!("{name:<32} {:>12}", fmt_time(t));
    t
}

/// The workspace root (two levels above this crate's manifest) —
/// `BENCH_*.json` snapshots are committed there, and anchoring the
/// path makes dumps land in the same place whether the binary runs
/// under `cargo bench` (CWD = package root) or `cargo run`
/// (CWD = invocation dir).
#[must_use]
pub fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Handle the shared `--json` flag: when present in `argv`, telemetry
/// is enabled for the whole run and the returned guard writes the
/// global registry's JSON snapshot to `BENCH_<name>.json` in the
/// [`workspace_root`] when dropped (i.e. at the end of `main`).
/// Without the flag this is inert and telemetry stays off, so timings
/// are unperturbed.
#[must_use]
pub fn json_dump(name: &'static str) -> JsonDumpGuard {
    let active = std::env::args().any(|a| a == "--json");
    if active {
        lq_telemetry::enable();
    }
    JsonDumpGuard { name, active }
}

/// Guard from [`json_dump`]; writes the snapshot on drop.
pub struct JsonDumpGuard {
    name: &'static str,
    active: bool,
}

impl Drop for JsonDumpGuard {
    fn drop(&mut self) {
        if self.active {
            let path = workspace_root().join(format!("BENCH_{}.json", self.name));
            match std::fs::write(&path, lq_telemetry::registry().to_json()) {
                Ok(()) => eprintln!("telemetry snapshot written to {}", path.display()),
                Err(e) => eprintln!("failed to write {}: {e}", path.display()),
            }
        }
    }
}

/// Handle the shared `--trace <path>` flag: when present in `argv`,
/// causal event tracing ([`lq_trace`]) is enabled for the whole run and
/// the returned guard drains the global tracer when dropped, exports a
/// Chrome trace-event JSON document, self-validates it, and writes it
/// to `<path>` (open at <https://ui.perfetto.dev>). Without the flag
/// this is inert: every record site stays on its one-relaxed-load noop
/// branch, so timings are unperturbed.
#[must_use]
pub fn trace_dump() -> TraceDumpGuard {
    let mut args = std::env::args();
    let mut path = None;
    while let Some(a) = args.next() {
        if a == "--trace" {
            path = args.next();
        }
    }
    if path.is_some() {
        lq_trace::enable();
    }
    TraceDumpGuard { path }
}

/// Guard from [`trace_dump`]; exports and writes on drop, or earlier
/// (with the events handed back) via [`TraceDumpGuard::flush`].
pub struct TraceDumpGuard {
    path: Option<String>,
}

impl TraceDumpGuard {
    /// Was `--trace <path>` given?
    #[must_use]
    pub fn active(&self) -> bool {
        self.path.is_some()
    }

    /// Drain the tracer now, validate + write the Chrome JSON export,
    /// and return the drained events so callers can gate on them (the
    /// `--smoke` per-worker coverage check). Idempotent — the drop path
    /// becomes a no-op afterwards.
    ///
    /// # Panics
    /// If the export fails its own JSON validation or the file cannot
    /// be written: a trace the viewer cannot load must fail loudly.
    pub fn flush(&mut self) -> Vec<lq_trace::Event> {
        let Some(path) = self.path.take() else {
            return Vec::new();
        };
        // Relative paths anchor to the workspace root (same rule as
        // `json_dump`), so `--trace foo.json` lands in one predictable
        // place no matter the invocation CWD; absolute paths pass
        // through `join` untouched.
        let path = workspace_root().join(&path);
        let events = lq_trace::take_events();
        let json = lq_trace::chrome::export(&events);
        lq_trace::json::validate(&json)
            .unwrap_or_else(|e| panic!("chrome trace export is invalid JSON: {e}"));
        std::fs::write(&path, &json)
            .unwrap_or_else(|e| panic!("failed to write {}: {e}", path.display()));
        let dropped = lq_trace::dropped_total();
        eprintln!(
            "chrome trace ({} events{}) written to {} — open at https://ui.perfetto.dev",
            events.len(),
            if dropped == 0 {
                String::new()
            } else {
                format!(", {dropped} dropped at the rings")
            },
            path.display(),
        );
        events
    }
}

impl Drop for TraceDumpGuard {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            let _ = self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_time_units() {
        assert_eq!(fmt_time(2.5), "2.50 s");
        assert_eq!(fmt_time(2.5e-3), "2.50 ms");
        assert_eq!(fmt_time(2.5e-6), "2.50 us");
        assert_eq!(fmt_time(250e-9), "250 ns");
    }

    #[test]
    fn measure_median_returns_positive() {
        let t = measure_median(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(t > 0.0);
    }
}
