//! # lq-models — model zoo (shapes only)
//!
//! Architectural configurations of the eight models in the paper's
//! Table 1, and the per-layer GEMM shape sets the kernel benchmarks
//! sweep (fused QKV projection, attention output projection, and the
//! gate/up + down FFN matmuls; per-expert FFNs for Mixtral).
//!
//! No weights are stored — GEMM performance depends on shapes, and the
//! serving simulator only needs byte counts, which follow from shapes
//! and precision.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod configs;
pub mod shapes;

pub use configs::{ModelConfig, MoeConfig, ALL_MODELS};
pub use shapes::{decode_layer_shapes, LayerShapes, WeightPrecision};
