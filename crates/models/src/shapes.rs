//! Per-layer GEMM shape sets — the workloads of Figures 5 and 12.
//!
//! During decode, one transformer layer performs four (dense) GEMMs:
//! the fused QKV projection, the attention output projection, the fused
//! gate+up FFN matmul, and the down FFN matmul. For Mixtral each routed
//! expert runs its own FFN pair on its share of the tokens.

use crate::configs::ModelConfig;
use lq_sim::cost_model::GemmShape;

/// Weight precision, for byte accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightPrecision {
    /// 4-bit weights.
    W4,
    /// 8-bit weights (INT8 or FP8).
    W8,
    /// 16-bit weights.
    W16,
}

impl WeightPrecision {
    /// Bits per weight.
    #[must_use]
    pub fn bits(self) -> f64 {
        match self {
            WeightPrecision::W4 => 4.0,
            WeightPrecision::W8 => 8.0,
            WeightPrecision::W16 => 16.0,
        }
    }
}

/// The GEMMs of one decoder layer at batch size `m`.
#[derive(Debug, Clone)]
pub struct LayerShapes {
    /// Dense GEMMs executed once per layer (QKV, O, and for dense
    /// models the FFN pair).
    pub dense: Vec<GemmShape>,
    /// MoE expert GEMMs: `(shape_per_expert, expert_count)`. The shape's
    /// `m` is the *expected per-expert* token count (`m·top_k/E`),
    /// matching how grouped-GEMM benchmarks size the problem.
    pub grouped: Option<(Vec<GemmShape>, usize)>,
}

impl LayerShapes {
    /// All dense shapes plus the grouped shapes expanded per expert.
    #[must_use]
    pub fn flattened(&self) -> Vec<GemmShape> {
        let mut v = self.dense.clone();
        if let Some((shapes, experts)) = &self.grouped {
            for _ in 0..*experts {
                v.extend_from_slice(shapes);
            }
        }
        v
    }

    /// Total weight elements across the layer's GEMMs.
    #[must_use]
    pub fn weight_elems(&self) -> f64 {
        self.flattened().iter().map(GemmShape::weight_elems).sum()
    }

    /// Total MMA ops across the layer's GEMMs.
    #[must_use]
    pub fn ops(&self) -> f64 {
        self.flattened().iter().map(GemmShape::ops).sum()
    }
}

/// GEMM shapes of one decode step at batch `m`.
#[must_use]
pub fn decode_layer_shapes(cfg: &ModelConfig, m: usize) -> LayerShapes {
    assert!(m > 0, "batch must be positive");
    let h = cfg.hidden;
    let qkv = GemmShape {
        m,
        n: h + 2 * cfg.kv_dim(),
        k: h,
    };
    let o = GemmShape { m, n: h, k: h };
    match cfg.moe {
        None => {
            let gate_up = GemmShape {
                m,
                n: 2 * cfg.intermediate,
                k: h,
            };
            let down = GemmShape {
                m,
                n: h,
                k: cfg.intermediate,
            };
            LayerShapes {
                dense: vec![qkv, o, gate_up, down],
                grouped: None,
            }
        }
        Some(moe) => {
            // Expected tokens per expert under uniform routing.
            let m_e = (m * moe.top_k).div_ceil(moe.experts).max(1);
            let gate_up = GemmShape {
                m: m_e,
                n: 2 * cfg.intermediate,
                k: h,
            };
            let down = GemmShape {
                m: m_e,
                n: h,
                k: cfg.intermediate,
            };
            LayerShapes {
                dense: vec![qkv, o],
                grouped: Some((vec![gate_up, down], moe.experts)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::{LLAMA2_70B, LLAMA2_7B, MIXTRAL_8X7B};

    #[test]
    fn llama2_7b_shapes_are_canonical() {
        let s = decode_layer_shapes(&LLAMA2_7B, 16);
        assert_eq!(s.dense.len(), 4);
        assert!(s.grouped.is_none());
        // Fused QKV: 4096 + 2·4096 = 12288 outputs (full MHA).
        assert_eq!(
            s.dense[0],
            GemmShape {
                m: 16,
                n: 12288,
                k: 4096
            }
        );
        assert_eq!(
            s.dense[1],
            GemmShape {
                m: 16,
                n: 4096,
                k: 4096
            }
        );
        assert_eq!(
            s.dense[2],
            GemmShape {
                m: 16,
                n: 22016,
                k: 4096
            }
        );
        assert_eq!(
            s.dense[3],
            GemmShape {
                m: 16,
                n: 4096,
                k: 11008
            }
        );
    }

    #[test]
    fn gqa_shrinks_qkv_output() {
        let s = decode_layer_shapes(&LLAMA2_70B, 8);
        // 8192 + 2·(8 heads × 128) = 8192 + 2048.
        assert_eq!(s.dense[0].n, 10240);
    }

    #[test]
    fn mixtral_routes_to_experts() {
        let s = decode_layer_shapes(&MIXTRAL_8X7B, 32);
        let (shapes, experts) = s.grouped.as_ref().unwrap();
        assert_eq!(*experts, 8);
        // 32 tokens × top-2 / 8 experts = 8 per expert.
        assert_eq!(shapes[0].m, 8);
        assert_eq!(shapes[0].n, 2 * 14336);
        assert_eq!(s.flattened().len(), 2 + 16);
    }

    #[test]
    fn tiny_batch_moe_keeps_one_token_per_expert() {
        let s = decode_layer_shapes(&MIXTRAL_8X7B, 1);
        let (shapes, _) = s.grouped.as_ref().unwrap();
        assert_eq!(shapes[0].m, 1);
    }

    #[test]
    fn weight_elems_match_config_params() {
        // Layer weight elements from shapes == config's parameter count
        // (dense model; batch size must not matter).
        let s = decode_layer_shapes(&LLAMA2_7B, 64);
        assert_eq!(s.weight_elems() as u64, LLAMA2_7B.layer_linear_params());
    }

    #[test]
    fn moe_weight_elems_count_all_experts() {
        let s = decode_layer_shapes(&MIXTRAL_8X7B, 4);
        assert_eq!(s.weight_elems() as u64, MIXTRAL_8X7B.layer_linear_params());
    }

    #[test]
    fn ops_scale_with_batch_for_dense() {
        let a = decode_layer_shapes(&LLAMA2_7B, 8).ops();
        let b = decode_layer_shapes(&LLAMA2_7B, 16).ops();
        assert_eq!(b / a, 2.0);
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_panics() {
        let _ = decode_layer_shapes(&LLAMA2_7B, 0);
    }
}
