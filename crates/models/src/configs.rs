//! Published architecture parameters for the evaluated models.

/// Mixture-of-experts parameters (present only for Mixtral).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoeConfig {
    /// Number of experts.
    pub experts: usize,
    /// Experts activated per token.
    pub top_k: usize,
}

/// One transformer architecture (decoder-only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Display name matching Table 1.
    pub name: &'static str,
    /// Hidden size.
    pub hidden: usize,
    /// FFN intermediate size (per expert for MoE).
    pub intermediate: usize,
    /// Decoder layers.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// KV heads (< heads ⇒ grouped-query attention).
    pub kv_heads: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// MoE parameters, if any.
    pub moe: Option<MoeConfig>,
}

/// LLaMA-30B (LLaMA 1).
pub const LLAMA1_30B: ModelConfig = ModelConfig {
    name: "LLaMA1-30B",
    hidden: 6656,
    intermediate: 17920,
    layers: 60,
    heads: 52,
    kv_heads: 52,
    vocab: 32000,
    moe: None,
};

/// LLaMA2-7B.
pub const LLAMA2_7B: ModelConfig = ModelConfig {
    name: "LLaMA2-7B",
    hidden: 4096,
    intermediate: 11008,
    layers: 32,
    heads: 32,
    kv_heads: 32,
    vocab: 32000,
    moe: None,
};

/// LLaMA2-13B.
pub const LLAMA2_13B: ModelConfig = ModelConfig {
    name: "LLaMA2-13B",
    hidden: 5120,
    intermediate: 13824,
    layers: 40,
    heads: 40,
    kv_heads: 40,
    vocab: 32000,
    moe: None,
};

/// LLaMA2-70B (grouped-query attention).
pub const LLAMA2_70B: ModelConfig = ModelConfig {
    name: "LLaMA2-70B",
    hidden: 8192,
    intermediate: 28672,
    layers: 80,
    heads: 64,
    kv_heads: 8,
    vocab: 32000,
    moe: None,
};

/// LLaMA3-8B.
pub const LLAMA3_8B: ModelConfig = ModelConfig {
    name: "LLaMA3-8B",
    hidden: 4096,
    intermediate: 14336,
    layers: 32,
    heads: 32,
    kv_heads: 8,
    vocab: 128256,
    moe: None,
};

/// Mistral-7B.
pub const MISTRAL_7B: ModelConfig = ModelConfig {
    name: "Mistral-7B",
    hidden: 4096,
    intermediate: 14336,
    layers: 32,
    heads: 32,
    kv_heads: 8,
    vocab: 32000,
    moe: None,
};

/// Yi-34B.
pub const YI_34B: ModelConfig = ModelConfig {
    name: "Yi-34B",
    hidden: 7168,
    intermediate: 20480,
    layers: 60,
    heads: 56,
    kv_heads: 8,
    vocab: 64000,
    moe: None,
};

/// Mixtral-8×7B (MoE).
pub const MIXTRAL_8X7B: ModelConfig = ModelConfig {
    name: "Mixtral-8x7B",
    hidden: 4096,
    intermediate: 14336,
    layers: 32,
    heads: 32,
    kv_heads: 8,
    vocab: 32000,
    moe: Some(MoeConfig {
        experts: 8,
        top_k: 2,
    }),
};

/// All Table-1 models, in the paper's column order.
pub const ALL_MODELS: [ModelConfig; 8] = [
    LLAMA1_30B,
    LLAMA2_7B,
    LLAMA2_13B,
    LLAMA2_70B,
    LLAMA3_8B,
    MISTRAL_7B,
    YI_34B,
    MIXTRAL_8X7B,
];

impl ModelConfig {
    /// Head dimension.
    #[must_use]
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// KV dimension (kv_heads × head_dim).
    #[must_use]
    pub fn kv_dim(&self) -> usize {
        self.kv_heads * self.head_dim()
    }

    /// Linear-layer parameter count per decoder layer (QKV + O + FFN;
    /// per-expert FFNs counted `experts` times for MoE).
    #[must_use]
    pub fn layer_linear_params(&self) -> u64 {
        let h = self.hidden as u64;
        let qkv = h * (self.hidden + 2 * self.kv_dim()) as u64;
        let o = h * h;
        let ffn_one = 3 * h * self.intermediate as u64; // gate + up + down
        let ffn = match self.moe {
            Some(m) => ffn_one * m.experts as u64,
            None => ffn_one,
        };
        qkv + o + ffn
    }

    /// Total linear parameters (all layers + LM head + embeddings).
    #[must_use]
    pub fn total_params(&self) -> u64 {
        let per_layer = self.layer_linear_params();
        let emb = (self.vocab as u64) * (self.hidden as u64);
        per_layer * self.layers as u64 + 2 * emb
    }

    /// Weight bytes per decoder layer at `bits_per_weight` (linear
    /// layers only — what quantization compresses).
    #[must_use]
    pub fn layer_weight_bytes(&self, bits_per_weight: f64) -> f64 {
        self.layer_linear_params() as f64 * bits_per_weight / 8.0
    }

    /// KV-cache bytes per token at `bytes_per_value` (e.g. 1 for INT8,
    /// 2 for FP16, 0.5 for 4-bit).
    #[must_use]
    pub fn kv_bytes_per_token(&self, bytes_per_value: f64) -> f64 {
        2.0 * self.layers as f64 * self.kv_dim() as f64 * bytes_per_value
    }

    /// Attention FLOPs for one decode step of one sequence with context
    /// length `ctx` (QK^T + AV over all heads).
    #[must_use]
    pub fn attention_flops_per_token(&self, ctx: usize) -> f64 {
        // Q·Kᵀ: heads × ctx × head_dim MACs; A·V: same. 2 ops per MAC.
        4.0 * self.heads as f64 * ctx as f64 * self.head_dim() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_dims_are_canonical() {
        for m in ALL_MODELS {
            assert_eq!(m.head_dim(), 128, "{}", m.name);
            assert_eq!(m.hidden % m.heads, 0);
            assert!(m.kv_heads <= m.heads);
        }
    }

    #[test]
    fn total_params_match_model_names() {
        // Parameter counts should land near the nameplate sizes.
        let close = |got: u64, want_b: f64| {
            let got_b = got as f64 / 1e9;
            (got_b / want_b - 1.0).abs() < 0.15
        };
        assert!(
            close(LLAMA2_7B.total_params(), 6.7),
            "{}",
            LLAMA2_7B.total_params()
        );
        assert!(
            close(LLAMA2_13B.total_params(), 13.0),
            "{}",
            LLAMA2_13B.total_params()
        );
        assert!(
            close(LLAMA2_70B.total_params(), 69.0),
            "{}",
            LLAMA2_70B.total_params()
        );
        assert!(
            close(LLAMA1_30B.total_params(), 32.5),
            "{}",
            LLAMA1_30B.total_params()
        );
        assert!(
            close(YI_34B.total_params(), 34.0),
            "{}",
            YI_34B.total_params()
        );
        // Mixtral: ~46.7B total.
        assert!(
            close(MIXTRAL_8X7B.total_params(), 46.7),
            "{}",
            MIXTRAL_8X7B.total_params()
        );
    }

    #[test]
    fn gqa_shrinks_kv_cache() {
        // LLaMA2-70B's 8 KV heads vs LLaMA2-13B's full MHA.
        let b70 = LLAMA2_70B.kv_bytes_per_token(1.0);
        let b13 = LLAMA2_13B.kv_bytes_per_token(1.0);
        assert!(b70 < b13, "GQA must shrink KV: {b70} vs {b13}");
        assert_eq!(LLAMA2_70B.kv_dim(), 1024);
    }

    #[test]
    fn kv_bytes_formula() {
        // LLaMA2-7B, INT8: 2 × 32 layers × 4096 = 256 KiB/token.
        assert_eq!(LLAMA2_7B.kv_bytes_per_token(1.0), 262144.0);
    }

    #[test]
    fn quantization_compresses_four_to_one() {
        for m in ALL_MODELS {
            let w4 = m.layer_weight_bytes(4.0);
            let w16 = m.layer_weight_bytes(16.0);
            assert_eq!(w16 / w4, 4.0, "{}", m.name);
        }
    }

    #[test]
    fn attention_flops_scale_with_context() {
        let f1 = LLAMA2_7B.attention_flops_per_token(1024);
        let f2 = LLAMA2_7B.attention_flops_per_token(2048);
        assert_eq!(f2 / f1, 2.0);
    }

    #[test]
    fn mixtral_is_the_only_moe() {
        let moes: Vec<&str> = ALL_MODELS
            .iter()
            .filter(|m| m.moe.is_some())
            .map(|m| m.name)
            .collect();
        assert_eq!(moes, vec!["Mixtral-8x7B"]);
    }
}
