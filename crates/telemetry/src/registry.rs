//! The global metric registry and its two exporters (Prometheus text
//! format and a JSON snapshot).
//!
//! Metrics are identified by a family name plus an optional, ordered
//! label set, e.g. `lq_pipeline_stall_total{role="producer",
//! variant="imfp"}`. Handles are `Arc`s: look one up once (a mutex +
//! map probe) and hold it across the hot loop; recording through the
//! handle is lock-free.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

use crate::metric::{bucket_upper, Counter, Gauge, Histogram, BUCKETS};

/// Fully qualified metric key: family name + rendered label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Key {
    /// Metric family, e.g. `lq_pipeline_stall_total`.
    pub name: String,
    /// Rendered labels without braces, e.g. `role="producer"`, empty
    /// for unlabeled metrics.
    pub labels: String,
}

impl Key {
    fn render(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut pairs: Vec<(&str, &str)> = labels.to_vec();
        pairs.sort_unstable();
        let mut s = String::new();
        for (i, (k, v)) in pairs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{k}=\"{v}\"");
        }
        Self {
            name: name.to_string(),
            labels: s,
        }
    }

    /// `name` or `name{labels}`.
    #[must_use]
    pub fn full(&self) -> String {
        if self.labels.is_empty() {
            self.name.clone()
        } else {
            format!("{}{{{}}}", self.name, self.labels)
        }
    }

    fn with_extra_label(&self, k: &str, v: &str) -> String {
        if self.labels.is_empty() {
            format!("{}{{{k}=\"{v}\"}}", self.name)
        } else {
            format!("{}{{{},{k}=\"{v}\"}}", self.name, self.labels)
        }
    }
}

/// A metric registry: named counters, gauges, and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<Key, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<Key, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<Key, Arc<Histogram>>>,
}

/// The process-wide registry every instrumented crate records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

impl Registry {
    /// A fresh, empty registry (tests; production code uses [`global`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Counter handle for `name` (created on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Labeled counter handle.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = Key::render(name, labels);
        Arc::clone(
            self.counters
                .lock()
                .expect("registry poisoned")
                .entry(key)
                .or_default(),
        )
    }

    /// Gauge handle for `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Labeled gauge handle.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = Key::render(name, labels);
        Arc::clone(
            self.gauges
                .lock()
                .expect("registry poisoned")
                .entry(key)
                .or_default(),
        )
    }

    /// Histogram handle for `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// Labeled histogram handle.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = Key::render(name, labels);
        Arc::clone(
            self.histograms
                .lock()
                .expect("registry poisoned")
                .entry(key)
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Drop every registered metric (testing / bench-phase isolation).
    /// Outstanding handles keep working but detach from future exports.
    pub fn clear(&self) {
        self.counters.lock().expect("registry poisoned").clear();
        self.gauges.lock().expect("registry poisoned").clear();
        self.histograms.lock().expect("registry poisoned").clear();
    }

    /// Export every metric in Prometheus text exposition format.
    ///
    /// Counters end in `_total` by convention (names are not rewritten);
    /// histograms expose cumulative `_bucket{le="..."}` series plus
    /// `_sum` and `_count`, with log₂ bucket edges.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (key, c) in self.counters.lock().expect("registry poisoned").iter() {
            let _ = writeln!(out, "# TYPE {} counter", key.name);
            let _ = writeln!(out, "{} {}", key.full(), c.get());
        }
        for (key, g) in self.gauges.lock().expect("registry poisoned").iter() {
            let _ = writeln!(out, "# TYPE {} gauge", key.name);
            let _ = writeln!(out, "{} {}", key.full(), fmt_f64(g.get()));
        }
        for (key, h) in self.histograms.lock().expect("registry poisoned").iter() {
            let snap = h.snapshot();
            let _ = writeln!(out, "# TYPE {} histogram", key.name);
            let mut cum = 0u64;
            for i in 0..BUCKETS {
                if snap.buckets[i] == 0 && i != 0 {
                    continue; // sparse export: only edges with samples
                }
                cum += snap.buckets[i];
                let name = format!("{}_bucket", key.name);
                let k = Key {
                    name,
                    labels: key.labels.clone(),
                };
                let _ = writeln!(
                    out,
                    "{} {cum}",
                    k.with_extra_label("le", &bucket_upper(i).to_string())
                );
            }
            let bname = format!("{}_bucket", key.name);
            let k = Key {
                name: bname,
                labels: key.labels.clone(),
            };
            let _ = writeln!(out, "{} {}", k.with_extra_label("le", "+Inf"), snap.count);
            let sum_key = Key {
                name: format!("{}_sum", key.name),
                labels: key.labels.clone(),
            };
            let _ = writeln!(out, "{} {}", sum_key.full(), snap.sum);
            let count_key = Key {
                name: format!("{}_count", key.name),
                labels: key.labels.clone(),
            };
            let _ = writeln!(out, "{} {}", count_key.full(), snap.count);
            // Summary-style quantile lines so dashboards get p50/p95/p99
            // without PromQL bucket math (log₂ edges make
            // histogram_quantile coarse anyway). Values are the upper
            // edge of the holding bucket, like `snapshot().quantile`.
            for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
                let _ = writeln!(
                    out,
                    "{} {}",
                    key.with_extra_label("quantile", label),
                    snap.quantile(q)
                );
            }
        }
        out
    }

    /// Export a JSON snapshot: counters and gauges as scalars,
    /// histograms as `{count, sum, max, mean, p50, p95, p99}` objects.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let counters = self.counters.lock().expect("registry poisoned");
        for (i, (key, c)) in counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {}",
                json_escape(&key.full()),
                c.get()
            );
        }
        drop(counters);
        out.push_str("\n  },\n  \"gauges\": {");
        let gauges = self.gauges.lock().expect("registry poisoned");
        for (i, (key, g)) in gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {}",
                json_escape(&key.full()),
                fmt_f64(g.get())
            );
        }
        drop(gauges);
        out.push_str("\n  },\n  \"histograms\": {");
        let hists = self.histograms.lock().expect("registry poisoned");
        for (i, (key, h)) in hists.iter().enumerate() {
            let snap = h.snapshot();
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                json_escape(&key.full()),
                snap.count,
                snap.sum,
                snap.max,
                fmt_f64(if snap.count == 0 {
                    0.0
                } else {
                    snap.sum as f64 / snap.count as f64
                }),
                snap.quantile(0.50),
                snap.quantile(0.95),
                snap.quantile(0.99),
            );
        }
        drop(hists);
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Finite-float formatting that is valid in both exports (JSON has no
/// NaN/Inf literals; map them to 0 and the f64 extremes).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "0".to_string()
    } else if v.is_infinite() {
        if v > 0.0 {
            format!("{}", f64::MAX)
        } else {
            format!("{}", f64::MIN)
        }
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 4);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}
