//! Metric primitives: relaxed-atomic counters and gauges, log₂-bucketed
//! histograms, and RAII span timers.
//!
//! Everything here is lock-free on the record path: a counter increment
//! is one relaxed `fetch_add`; a histogram record is three. Readers
//! (snapshot/export) tolerate torn cross-field views — totals are
//! monotone and each field is individually atomic, which is all the
//! exporters promise.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::enabled;

/// Monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge holding an `f64` (bit-stored in an atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at 0.0.
    #[must_use]
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Set the value.
    #[inline]
    pub fn set(&self, v: f64) {
        if enabled() {
            self.0.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Add `d` (compare-and-swap loop; gauges are not hot-path metrics).
    pub fn add(&self, d: f64) {
        if !enabled() {
            return;
        }
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of log₂ buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`, so bucket 64 holds the top half of
/// the `u64` range.
pub const BUCKETS: usize = 65;

/// Log₂-bucketed histogram of `u64` samples (convention: nanoseconds
/// for wall-clock spans, raw counts otherwise).
///
/// Quantiles are bucket-resolution estimates: `quantile(q)` returns the
/// inclusive upper edge of the bucket containing the q-th sample, so
/// the estimate is within 2× of the true value (and exact for `max`,
/// which is tracked separately).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a sample.
#[inline]
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper edge of bucket `i` (`0` for bucket 0, `2^i − 1`
/// otherwise, saturating at `u64::MAX`).
#[inline]
#[must_use]
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a `Duration`-like number of seconds as nanoseconds.
    #[inline]
    pub fn record_secs(&self, secs: f64) {
        self.record((secs.max(0.0) * 1e9) as u64);
    }

    /// Total samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen (exact), or 0 when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Bucket-resolution quantile estimate for `q ∈ [0, 1]`: the upper
    /// edge of the bucket holding the ⌈q·count⌉-th smallest sample
    /// (clamped to the observed max). Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let snap = self.snapshot();
        snap.quantile(q)
    }

    /// Consistent-enough copy of the current state (each field is read
    /// atomically; concurrent recorders may land between reads).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
        }
    }

    /// RAII timer recording elapsed wall-clock nanoseconds into this
    /// histogram on drop. When telemetry is disabled at creation, the
    /// span holds no clock and its drop is a no-op.
    #[must_use]
    pub fn span(&self) -> Span<'_> {
        Span {
            hist: self,
            start: enabled().then(Instant::now),
        }
    }

    /// Owned variant of [`Histogram::span`]: keeps the histogram alive,
    /// so the span can outlive the registry-lookup scope.
    #[must_use]
    pub fn span_owned(self: &std::sync::Arc<Self>) -> OwnedSpan {
        OwnedSpan {
            hist: std::sync::Arc::clone(self),
            start: enabled().then(Instant::now),
        }
    }

    /// Reset all cells to zero (testing / between bench phases).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts.
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Exact maximum sample.
    pub max: u64,
}

impl HistogramSnapshot {
    /// See [`Histogram::quantile`].
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }
}

/// RAII span timer from [`Histogram::span`].
#[derive(Debug)]
pub struct Span<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
}

impl Span<'_> {
    /// Abandon the span without recording.
    pub fn cancel(mut self) {
        self.start = None;
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist.record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// RAII span timer from [`Histogram::span_owned`].
#[derive(Debug)]
pub struct OwnedSpan {
    hist: std::sync::Arc<Histogram>,
    start: Option<Instant>,
}

impl OwnedSpan {
    /// Abandon the span without recording.
    pub fn cancel(mut self) {
        self.start = None;
    }
}

impl Drop for OwnedSpan {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist.record(start.elapsed().as_nanos() as u64);
        }
    }
}
