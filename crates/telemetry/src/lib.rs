//! # lq-telemetry — zero-dependency metrics and span tracing
//!
//! The paper's evidence is *where time goes*: per-warp-group stall
//! breakdowns (Fig. 10), kernel latencies (Fig. 12), pipeline-bubble
//! accounting (§5.1). This crate makes those signals first-class in the
//! reproduction: every hot layer (`lq-core` pipelines, `lq-serving`
//! scheduler/KV cache, `lq-sim` resource model) records into one global
//! registry that exports Prometheus text format and a JSON snapshot.
//!
//! ## Design
//! * **std-only.** Counters and gauges are single relaxed atomics;
//!   histograms are 65 log₂ buckets of relaxed atomics (p50/p95/p99 are
//!   bucket-resolution estimates, `max` is exact).
//! * **Off by default.** Recording is gated on one process-global
//!   `AtomicBool`: until [`enable`] is called, every record path is a
//!   relaxed load + branch — the "noop recorder" — so benchmark hot
//!   loops are unaffected (<5% on `cpu_kernel_bench` is the budget;
//!   measured ~0%). Instrumented crates additionally skip handle
//!   lookups entirely when disabled.
//! * **Handles are `Arc`s.** Look up `registry().counter_with(...)`
//!   once per phase, then record lock-free through the handle.
//!
//! ## Usage
//! ```
//! lq_telemetry::enable();
//! let reg = lq_telemetry::registry();
//! let stalls = reg.counter_with("my_stall_total", &[("role", "producer")]);
//! stalls.inc();
//! let lat = reg.histogram("my_step_ns");
//! {
//!     let _span = lat.span(); // records elapsed ns on drop
//! }
//! assert!(lat.count() >= 1);
//! println!("{}", reg.to_prometheus());
//! println!("{}", reg.to_json());
//! ```
//!
//! Naming conventions: counters end `_total`; wall-clock histograms end
//! `_ns` and hold nanoseconds; modelled (simulated) durations also use
//! `_ns`; gauges carry a unit suffix (`_pages`, `_frac`, `_per_s`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metric;
pub mod registry;

pub use metric::{Counter, Gauge, Histogram, HistogramSnapshot, OwnedSpan, Span};
pub use registry::{global as registry, Key, Registry};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is recording enabled? All record paths check this first; the
/// disabled path is a relaxed load and a branch.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on process-wide.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn recording off process-wide (back to the noop recorder).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Enable recording iff the environment asks for it
/// (`LQ_TELEMETRY=1|true|on`). Returns the resulting state.
pub fn enable_from_env() -> bool {
    if matches!(
        std::env::var("LQ_TELEMETRY").as_deref(),
        Ok("1") | Ok("true") | Ok("on")
    ) {
        enable();
    }
    enabled()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests in this file share the process-global ENABLED flag; each
    // test that needs recording enables it and none disable it, so
    // parallel execution is safe.

    #[test]
    fn disabled_paths_record_nothing() {
        // A private registry keeps this test independent of others.
        let reg = Registry::new();
        let c = reg.counter("t_disabled_total");
        let h = reg.histogram("t_disabled_ns");
        disable();
        c.inc();
        h.record(5);
        // Note: another test may have re-enabled concurrently; only
        // assert when the flag is still off.
        if !enabled() {
            assert_eq!(c.get(), 0);
            assert_eq!(h.count(), 0);
        }
        enable();
        c.inc();
        h.record(5);
        assert!(c.get() >= 1);
        assert!(h.count() >= 1);
    }

    #[test]
    fn prometheus_and_json_shapes() {
        enable();
        let reg = Registry::new();
        reg.counter_with("t_stall_total", &[("role", "producer")])
            .add(3);
        reg.gauge("t_depth").set(2.5);
        let h = reg.histogram("t_lat_ns");
        for v in [1u64, 2, 3, 1000] {
            h.record(v);
        }
        let prom = reg.to_prometheus();
        assert!(prom.contains("# TYPE t_stall_total counter"), "{prom}");
        assert!(
            prom.contains("t_stall_total{role=\"producer\"} 3"),
            "{prom}"
        );
        assert!(prom.contains("t_depth 2.5"), "{prom}");
        assert!(prom.contains("# TYPE t_lat_ns histogram"), "{prom}");
        assert!(prom.contains("t_lat_ns_count 4"), "{prom}");
        assert!(prom.contains("le=\"+Inf\"} 4"), "{prom}");
        let json = reg.to_json();
        assert!(
            json.contains("\"t_stall_total{role=\\\"producer\\\"}\": 3"),
            "{json}"
        );
        assert!(json.contains("\"count\": 4"), "{json}");
    }

    #[test]
    fn prometheus_quantile_lines_exact_format() {
        // Pin the quantile-line text byte-for-byte: dashboards scrape
        // it, so format drift is a breaking change. Samples [1,2,3,
        // 1000] in log₂ buckets: rank ⌈0.5·4⌉=2 lands in bucket (1,3]
        // (upper edge 3); ranks ⌈0.95·4⌉=⌈0.99·4⌉=4 land in (511,1023]
        // and clamp to the observed max 1000.
        enable();
        let reg = Registry::new();
        let h = reg.histogram("t_q_ns");
        for v in [1u64, 2, 3, 1000] {
            h.record(v);
        }
        let prom = reg.to_prometheus();
        assert!(prom.contains("t_q_ns{quantile=\"0.5\"} 3\n"), "{prom}");
        assert!(prom.contains("t_q_ns{quantile=\"0.95\"} 1000\n"), "{prom}");
        assert!(prom.contains("t_q_ns{quantile=\"0.99\"} 1000\n"), "{prom}");
        // Quantile lines come after _count and compose with existing
        // labels (sorted labels first, quantile appended last).
        let lr = Registry::new();
        lr.histogram_with("t_ql_ns", &[("role", "mma")]).record(7);
        let lp = lr.to_prometheus();
        let tail = "t_ql_ns_count{role=\"mma\"} 1\n\
                    t_ql_ns{role=\"mma\",quantile=\"0.5\"} 7\n\
                    t_ql_ns{role=\"mma\",quantile=\"0.95\"} 7\n\
                    t_ql_ns{role=\"mma\",quantile=\"0.99\"} 7\n";
        assert!(lp.ends_with(tail), "{lp}");
    }

    #[test]
    fn labeled_handles_are_shared() {
        let reg = Registry::new();
        let a = reg.counter_with("t_shared_total", &[("a", "1"), ("b", "2")]);
        // Label order must not matter.
        let b = reg.counter_with("t_shared_total", &[("b", "2"), ("a", "1")]);
        enable();
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
    }
}
