//! Telemetry-primitive tests: bucket edges, concurrent-sum exactness,
//! snapshot-under-recording, and randomized quantile sanity.

use lq_rng::Rng;
use lq_telemetry::metric::{bucket_index, bucket_upper, BUCKETS};
use lq_telemetry::{Counter, Histogram, Registry};
use std::sync::Arc;

fn setup() {
    lq_telemetry::enable();
}

#[test]
fn bucket_edges_zero_one_max() {
    setup();
    // Edge values land in the documented buckets.
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(2), 2);
    assert_eq!(bucket_index(3), 2);
    assert_eq!(bucket_index(4), 3);
    assert_eq!(bucket_index(u64::MAX), 64);
    assert_eq!(bucket_index(u64::MAX / 2), 63);
    assert!(bucket_index(u64::MAX) < BUCKETS);
    // Upper edges are inclusive and monotone.
    assert_eq!(bucket_upper(0), 0);
    assert_eq!(bucket_upper(1), 1);
    assert_eq!(bucket_upper(2), 3);
    assert_eq!(bucket_upper(64), u64::MAX);
    for i in 1..BUCKETS {
        assert!(bucket_upper(i) > bucket_upper(i - 1));
        // Every bucket's content is ≤ its upper edge.
        assert!(bucket_index(bucket_upper(i)) <= i);
    }

    let h = Histogram::new();
    h.record(0);
    h.record(1);
    h.record(u64::MAX);
    assert_eq!(h.count(), 3);
    assert_eq!(h.max(), u64::MAX);
    // Sum saturation is not promised at u64::MAX scale; count/max are.
    assert_eq!(h.quantile(0.0), 0);
    assert_eq!(h.quantile(1.0), u64::MAX);
}

#[test]
fn concurrent_increments_sum_exactly() {
    setup();
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 100_000;
    let c = Arc::new(Counter::new());
    let h = Arc::new(Histogram::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let c = Arc::clone(&c);
            let h = Arc::clone(&h);
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    c.inc();
                    h.record((t as u64) * 7 + (i % 5));
                }
            });
        }
    });
    assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
    assert_eq!(h.count(), THREADS as u64 * PER_THREAD);
    let snap = h.snapshot();
    assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
}

#[test]
fn snapshot_while_recording_is_coherent() {
    setup();
    let h = Arc::new(Histogram::new());
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|s| {
        for _ in 0..4 {
            let h = Arc::clone(&h);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut v = 1u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    h.record(v % 1000);
                    v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
            });
        }
        let mut last_count = 0u64;
        for _ in 0..200 {
            let snap = h.snapshot();
            // Counts are monotone across snapshots and bucket totals
            // never exceed the (possibly newer) count field read lastly
            // reread from the live histogram.
            assert!(snap.count >= last_count, "count went backwards");
            last_count = snap.count;
            let bucket_total: u64 = snap.buckets.iter().sum();
            // Buckets are incremented before count, so a torn view can
            // only show bucket_total >= count-ish; allow either side
            // within the live bound.
            assert!(bucket_total <= h.count() + 4, "wildly torn snapshot");
            assert!(snap.max < 1000);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    let snap = h.snapshot();
    assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
}

#[test]
fn quantiles_bracket_true_values_randomized() {
    setup();
    let mut rng = Rng::new(0xB0C4);
    for _case in 0..50 {
        let h = Histogram::new();
        let n = rng.range_usize(1, 4000);
        let mut vals: Vec<u64> = (0..n)
            .map(|_| {
                let hi = 1u64 << rng.range_usize(1, 40);
                rng.range_u64(0, hi)
            })
            .collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        for q in [0.5, 0.95, 0.99] {
            let est = h.quantile(q);
            let idx = ((q * n as f64).ceil() as usize).max(1) - 1;
            let truth = vals[idx];
            // Bucket-resolution estimate: within one power of two above
            // the true value, never below it.
            assert!(est >= truth, "q={q} est={est} truth={truth}");
            assert!(
                est <= truth.saturating_mul(2).max(1),
                "q={q} est={est} truth={truth}"
            );
        }
        assert_eq!(h.quantile(1.0), *vals.last().expect("non-empty"));
    }
}

#[test]
fn registry_reexports_survive_clear() {
    setup();
    let reg = Registry::new();
    let c = reg.counter("t_clear_total");
    c.inc();
    reg.clear();
    // Old handle still works, but a fresh lookup starts at zero.
    c.inc();
    assert_eq!(c.get(), 2);
    assert_eq!(reg.counter("t_clear_total").get(), 0);
}
