//! # liquidgemm — hardware-efficient W4A8 GEMM (SC'25 reproduction)
//!
//! Rust reproduction of *"LiquidGEMM: Hardware-Efficient W4A8 GEMM
//! Kernel for High-Performance LLM Serving"* (SC 2025). The crate
//! re-exports the full workspace:
//!
//! * [`swar`] — bit-exact emulation of the GPU register ops the
//!   dequantization paths use (IMAD, XOR, PRMT, emulated `vadd4`).
//! * [`quant`] — LiquidQuant: two-level W4 quantization with the
//!   overflow-free IMAD+XOR dequantization, the QoQ baseline,
//!   SmoothQuant calibration, FP8/FP16 codecs.
//! * [`layout`] — dual-MMA packed weight layout, the `ldmatrix`
//!   mis-scatter model, tiles, bank-conflict accounting.
//! * [`core`] — the kernels: serial and pipelined (flat / ExCP / ImFP)
//!   W4A8 GEMM plus W8A8 / W4A16 / FP16 / FP8 baselines, all driven by
//!   a persistent worker-pool runtime behind the [`core::LiquidGemm`]
//!   handle (the paper's persistent-kernel scheduling, § 5.4).
//! * [`sim`] — A100/H100/H800 hardware model, the paper's cost model
//!   (Eqs. 3–6), per-system kernel latency models, and the warp-group
//!   pipeline simulator.
//! * [`models`] — the eight evaluated model architectures (shapes).
//! * [`serving`] — paged KV cache, attention cost model, the seven
//!   serving-system configurations, decode and throughput simulation,
//!   and the executable continuous-batching runtime with priority
//!   tiers, SLO-aware admission, and KV-pressure preemption.
//! * [`router`] — sharded multi-replica serving: routing policies,
//!   prefill/decode disaggregation, open-loop arrival traces, and
//!   chaos-driven whole-replica failover (see DESIGN.md § 12).
//! * [`engine`] — an executable mini inference engine: RMSNorm, RoPE,
//!   paged INT8-KV streaming attention, SwiGLU, full decoder layers and
//!   greedy decoding, all on the W4A8 kernels.
//! * [`telemetry`] — zero-dependency metrics: relaxed-atomic counters,
//!   gauges, log₂ histograms, RAII spans, and a global registry with
//!   Prometheus-text and JSON exporters (see README § Observability).
//! * [`chaos`] — deterministic, seed-driven fault injection: one
//!   [`chaos::FaultPlan`] schedules worker panics, stalls, denied KV
//!   allocations, and engine panics by event index, so any failing run
//!   replays bit-identically from its seed (see DESIGN.md § 9).
//! * [`trace`] — causal event tracing: runtime-gated per-thread ring
//!   buffers of pool/pipeline/serving/fault events correlated by
//!   request and job IDs, a Chrome trace-event (Perfetto) exporter,
//!   and a critical-path analyzer (see DESIGN.md § 10).
//!
//! ## Quickstart
//!
//! The [`prelude`] re-exports the handle-based API — one import path
//! for the GEMM runtime, the weight types, and the serving runtime:
//!
//! ```
//! use liquidgemm::prelude::*;
//! use liquidgemm::quant::act::QuantizedActivations;
//! use liquidgemm::quant::mat::Mat;
//!
//! // FP32 weights (N=32 output features, K=64 inputs) and activations.
//! let w = Mat::from_fn(32, 64, |r, c| ((r * 64 + c) as f32 * 0.1).sin());
//! let x = Mat::from_fn(4, 64, |r, c| ((r + c) as f32 * 0.2).cos());
//!
//! // Build the persistent GEMM runtime once (it owns a worker pool,
//! // the paper's persistent-kernel scheduling) and pick the dequant
//! // backend — LiquidQuant here; any `BackendId` works on any pipeline.
//! let lg = LiquidGemm::builder().backend(BackendId::Lqq).build().unwrap();
//! // Offline: quantize + pack through the configured backend.
//! let weights = lg.pack_weights(&w, 64);
//! // Online: per-token INT8 activation quantization, then the implicit
//! // fine-grained pipeline.
//! let qa = QuantizedActivations::quantize(&x, None);
//! let out = lg.gemm(&qa.q, &qa.scales, &weights, KernelKind::ImFp);
//! assert_eq!((out.y.rows(), out.y.cols()), (4, 32));
//! ```

#![forbid(unsafe_code)]

pub use lq_chaos as chaos;
pub use lq_core as core;
pub use lq_engine as engine;
pub use lq_layout as layout;
pub use lq_models as models;
pub use lq_quant as quant;
pub use lq_router as router;
pub use lq_serving as serving;
pub use lq_sim as sim;
pub use lq_swar as swar;
pub use lq_telemetry as telemetry;
pub use lq_trace as trace;

/// The handle-based API in one import: `use liquidgemm::prelude::*;`.
///
/// Covers the four things nearly every program touches — the
/// persistent GEMM runtime ([`LiquidGemm`] + [`KernelKind`] +
/// [`W4A8Weights`]), the pluggable dequant-backend registry
/// ([`BackendId`] / [`KernelBackend`] / [`registry`] / [`resolve`]),
/// the executable model ([`TinyLlm`]), the serving API shared by
/// the simulated and executable schedulers ([`Request`] /
/// [`Completion`] / [`RunStats`] / [`SchedulerConfig`],
/// [`run_schedule`], [`ServingRuntime`] and its builder), and the
/// multi-replica router ([`ServingRouter`], [`TraceConfig`]).
pub mod prelude {
    pub use lq_chaos::{FaultAction, FaultInjector, FaultPlan, FaultStats};
    pub use lq_core::{
        GemmOutput, KernelKind, LiquidGemm, LiquidGemmBuilder, ShardConfigError, ShardError,
        ShardedGemm, ShardedGemmBuilder, ShardedWeights, W4A8Weights,
    };
    pub use lq_engine::{ModelSpec, TensorParallelEngine, TinyLlm};
    pub use lq_quant::backend::{
        registry, resolve, BackendCost, BackendId, KernelBackend, PackedWeights,
    };
    pub use lq_router::{
        ArrivalPattern, Disaggregation, ReplicaReport, RouterConfigError, RouterStats,
        RoutingPolicy, ServingRouter, ServingRouterBuilder, TierMix, TraceConfig, TraceConfigError,
    };
    pub use lq_serving::kvcache::SeqId;
    pub use lq_serving::runtime::{
        DrainedRun, EngineError, PromptRequest, ServingConfigError, ServingEngine, ServingRuntime,
        ServingRuntimeBuilder,
    };
    pub use lq_serving::{
        run_schedule, AdmissionPolicy, Completion, CompletionStatus, PagedKvCache,
        PreemptionPolicy, Priority, Request, RunStats, SchedulerConfig, SchedulerConfigError,
        ServingSystem, SystemId,
    };
}
