//! Mixture-of-experts serving: the Mixtral-8×7B case study.
//!
//! Shows the two MoE-specific effects the paper's evaluation hinges on:
//! (1) grouped expert GEMMs at tiny per-expert batches favour TRT's
//! GEMV-specialised kernels, with the crossover at batch ≈ 32; and
//! (2) end to end, 4-bit weights + the ImFP grouped pipeline give
//! LiquidServe the Table-1 Mixtral win (paper: 1.30×).
//!
//! Run: `cargo run --release --example moe_serving`

use liquidgemm::models::configs::MIXTRAL_8X7B;
use liquidgemm::models::decode_layer_shapes;
use liquidgemm::prelude::*;
use liquidgemm::serving::throughput::peak_throughput;
use liquidgemm::sim::kernel_model::{KernelModel, SystemKind};
use liquidgemm::sim::specs::H800;

fn main() {
    let cfg = &MIXTRAL_8X7B;
    let moe = cfg.moe.expect("Mixtral is MoE");
    println!(
        "== {}: {} experts, top-{} routing, intermediate {} ==\n",
        cfg.name, moe.experts, moe.top_k, cfg.intermediate
    );

    // 1. The grouped-GEMM crossover (Figure 12's Mixtral panel).
    println!("grouped expert-FFN latency per layer (kernel model):\n");
    println!(
        "{:>6}  {:>12} {:>12} {:>12}   winner",
        "batch", "LiquidGEMM", "TRT-W4A16", "TRT-FP8"
    );
    for batch in [4usize, 8, 16, 32, 64, 128, 256] {
        let shapes = decode_layer_shapes(cfg, batch);
        let (grouped, experts) = shapes.grouped.as_ref().expect("MoE");
        let lat = |kind: SystemKind| {
            let km = KernelModel::of(kind);
            grouped
                .iter()
                .map(|&g| km.grouped_latency(&H800, g, *experts))
                .sum::<f64>()
        };
        let l = lat(SystemKind::LiquidGemm);
        let w = lat(SystemKind::TrtW4A16);
        let f = lat(SystemKind::TrtFp8);
        let winner = if l <= w.min(f) {
            "LiquidGEMM"
        } else if w <= f {
            "TRT-W4A16"
        } else {
            "TRT-FP8"
        };
        println!(
            "{batch:>6}  {:>10.1}us {:>10.1}us {:>10.1}us   {winner}",
            l * 1e6,
            w * 1e6,
            f * 1e6
        );
    }

    // 2. Peak serving throughput (the Table-1 Mixtral column).
    println!("\npeak serving throughput under 80 GB (Table-1 Mixtral column):\n");
    for id in SystemId::ALL {
        let sys = ServingSystem::of(id);
        match peak_throughput(&sys, &H800, cfg) {
            Some(p) => println!(
                "  {:<16} {:>8.0} tok/s (batch {})",
                sys.name, p.tokens_per_s, p.batch
            ),
            None => println!(
                "  {:<16} {:>8}",
                sys.name,
                if sys.supports(cfg) { "OOM" } else { "NA" }
            ),
        }
    }

    // 3. A bursty serving episode through the continuous-batching loop.
    println!("\nbursty load (120 requests, 3 waves), continuous batching:\n");
    let mut reqs = Vec::new();
    for wave in 0..3u64 {
        for i in 0..40u64 {
            reqs.push(Request::new(wave * 40 + i, 1024, 512, wave as f64 * 60.0));
        }
    }
    for id in [SystemId::LiquidServe, SystemId::TrtFp8, SystemId::TrtW4A16] {
        let sys = ServingSystem::of(id);
        let stats = run_schedule(&sys, &H800, cfg, SchedulerConfig::default(), &reqs);
        println!(
            "  {:<12} {:>6.0} tok/s sustained, peak batch {:>3}, p95 latency {:>6.1} s",
            sys.name,
            stats.throughput(),
            stats.peak_batch,
            stats.latency_percentile(95.0)
        );
    }
}
