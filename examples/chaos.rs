//! Chaos demo: inject deterministic worker panics into the persistent
//! GEMM pool and watch it self-heal — quarantine the panicked worker,
//! retry the lost tile job, respawn a replacement — with the result
//! staying bit-exact against the serial kernel.
//!
//! Run: `cargo run --release --example chaos [seed]`
//!
//! The whole fault schedule derives from one seed, so any run replays
//! exactly: same seed, same panics at the same job indices, same
//! recovery ledger.

use liquidgemm::core::reference::max_abs_diff;
use liquidgemm::prelude::*;
use liquidgemm::quant::act::QuantizedActivations;
use liquidgemm::quant::mat::Mat;
use std::sync::Arc;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);

    // One seed → one deterministic schedule across every fault site.
    let plan = FaultPlan::from_seed(seed);
    println!("seed {seed}:");
    println!("  worker panics at job indices {:?}", plan.worker_panics);
    println!("  worker stalls (index, µs)     {:?}", plan.worker_stalls);
    println!("  submit stalls (index, µs)     {:?}", plan.submit_stalls);
    let inj = Arc::new(FaultInjector::new(plan));

    // A pool with the injector wired in: scheduled jobs panic mid-tile;
    // the pool quarantines the worker, retries the job (retries run
    // clean — the fault is transient), and respawns the thread.
    let (m, n, k) = (24, 256, 1024);
    let w = Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.013).sin() * 0.5);
    let x = Mat::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.029).cos());
    let weights = W4A8Weights::quantize(&w, 64, BackendId::Lqq);
    let qa = QuantizedActivations::quantize(&x, None);

    let lg = LiquidGemm::builder()
        .workers(3)
        .fault_injector(Arc::clone(&inj))
        .build()
        .expect("valid config");

    let serial = lg.gemm(&qa.q, &qa.scales, &weights, KernelKind::Serial).y;
    if !inj.plan().worker_panics.is_empty() {
        println!("\n(any panic backtrace below is the injected fault being contained)");
    }
    let healed = lg.gemm(&qa.q, &qa.scales, &weights, KernelKind::ImFp).y;
    println!(
        "\nImFP under faults vs serial: max |diff| = {} (must be 0)",
        max_abs_diff(&healed, &serial)
    );

    let fired = inj.stats();
    println!(
        "faults fired: {} panics, {} stalls, {} submit stalls",
        fired.worker_panics, fired.worker_stalls, fired.submit_stalls
    );
    println!("\nper-worker healing ledger:");
    println!("  worker  jobs  restarts  retries");
    for (id, s) in lg.pool().worker_stats().iter().enumerate() {
        println!(
            "  {id:>6}  {jobs:>4}  {restarts:>8}  {retries:>7}",
            jobs = s.jobs,
            restarts = s.restarts,
            retries = s.retries
        );
    }
    assert_eq!(max_abs_diff(&healed, &serial), 0.0, "healed GEMM diverged");
    println!("\npool healed every injected fault; result bit-exact. ✓");
}
