//! End-to-end serving simulation: drive the paged KV cache through a
//! continuous-batching decode episode and report Table-1-style peak
//! throughput for a chosen model across all seven systems.
//!
//! Run: `cargo run --release --example serving_sim [-- <model>]`
//! where `<model>` is one of: llama2-7b (default), llama2-70b,
//! llama3-8b, mixtral.

use liquidgemm::models::configs::{LLAMA2_70B, LLAMA2_7B, LLAMA3_8B, MIXTRAL_8X7B};
use liquidgemm::models::ModelConfig;
use liquidgemm::prelude::*;
use liquidgemm::serving::decode::decode_step;
use liquidgemm::serving::throughput::{peak_throughput, INPUT_LEN, OUTPUT_LEN};
use liquidgemm::sim::specs::H800;

fn pick_model() -> &'static ModelConfig {
    match std::env::args().nth(1).as_deref() {
        Some("llama2-70b") => &LLAMA2_70B,
        Some("llama3-8b") => &LLAMA3_8B,
        Some("mixtral") => &MIXTRAL_8X7B,
        _ => &LLAMA2_7B,
    }
}

fn main() {
    let cfg = pick_model();
    println!("== serving simulation: {} on H800 (80 GB) ==\n", cfg.name);

    // Part 1: the KV cache mechanics, driven for real.
    let sys = ServingSystem::of(SystemId::LiquidServe);
    let kv_budget = H800.mem_capacity as f64 - sys.weight_bytes(cfg) - 2e9;
    let bytes_per_token = cfg.kv_bytes_per_token(sys.attention.kv.bytes()) as usize;
    let mut cache = PagedKvCache::new(kv_budget.max(0.0) as u64, 16, bytes_per_token);
    println!(
        "KV budget {:.1} GiB -> {} pages of 16 tokens",
        kv_budget / 1024.0 / 1024.0 / 1024.0,
        cache.total_pages()
    );
    // Conservative admission (as the continuous-batching scheduler
    // does): a request is admitted only if its full prompt+output
    // reservation fits, so decode can never OOM mid-flight.
    let full = INPUT_LEN + OUTPUT_LEN;
    let mut admitted = 0u64;
    while cache.pages_for(full)
        <= cache.free_pages().saturating_sub(
            // keep the pages the already-admitted requests will still grow into
            admitted as usize * cache.pages_for(OUTPUT_LEN),
        )
    {
        cache
            .add_sequence(admitted, INPUT_LEN)
            .expect("reservation checked");
        admitted += 1;
    }
    println!("admitted {admitted} sequences of {INPUT_LEN} prompt tokens (full reservations)");
    // Decode OUTPUT_LEN steps, appending one token per live sequence.
    let mut appended = 0u64;
    for _ in 0..OUTPUT_LEN {
        for id in 0..admitted {
            cache
                .append_token(id)
                .expect("reservation guarantees capacity");
            appended += 1;
        }
    }
    println!(
        "appended {appended} tokens ({} per sequence); fragmentation {:.1}%; invariants hold: {}\n",
        OUTPUT_LEN,
        cache.fragmentation() * 100.0,
        cache.check_invariants()
    );

    // Part 2: Table-1 peak throughput for every system on this model.
    println!(
        "{:<16} {:>14} {:>8}   per-step breakdown at peak",
        "system", "tokens/s", "batch"
    );
    println!("{}", "-".repeat(78));
    for id in SystemId::ALL {
        let sys = ServingSystem::of(id);
        match peak_throughput(&sys, &H800, cfg) {
            Some(p) => {
                let b = decode_step(&sys, &H800, cfg, p.batch, INPUT_LEN + OUTPUT_LEN / 2);
                println!(
                    "{:<16} {:>14.0} {:>8}   gemm {:>6.2} ms | attn {:>6.2} ms | other {:>5.2} ms",
                    sys.name,
                    p.tokens_per_s,
                    p.batch,
                    b.gemm * 1e3,
                    b.attention * 1e3,
                    b.others * 1e3
                );
            }
            None => {
                let why = if sys.supports(cfg) { "OOM" } else { "NA" };
                println!("{:<16} {:>14}", sys.name, why);
            }
        }
    }
}
