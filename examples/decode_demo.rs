//! End-to-end decode on the executable mini engine: a multi-layer
//! decoder-only model whose every projection runs through the W4A8
//! LiquidGEMM kernel, with INT8 paged KV attention — compared step by
//! step against its FP32 twin.
//!
//! Run: `cargo run --release --example decode_demo`

use liquidgemm::engine::attention::AttnConfig;
use liquidgemm::engine::model::argmax;
use liquidgemm::prelude::*;
use liquidgemm::quant::metrics::error_stats;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let spec = ModelSpec {
        vocab: 256,
        hidden: 128,
        inter: 384,
        layers: 4,
        attn: AttnConfig {
            heads: 8,
            kv_heads: 2,
            head_dim: 16,
        },
        group: 64,
    };
    println!(
        "model: {} layers, hidden {}, inter {}, {} heads ({} KV heads, GQA), vocab {}\n",
        spec.layers, spec.hidden, spec.inter, spec.attn.heads, spec.attn.kv_heads, spec.vocab
    );

    // One persistent GEMM runtime serves every projection of every
    // layer — build it once, share it with the model.
    let engine = Arc::new(LiquidGemm::builder().build().expect("valid config"));
    let t0 = Instant::now();
    let mut q = TinyLlm::synthetic_with_engine(spec, 256, KernelKind::ImFp, Arc::clone(&engine));
    println!(
        "built + quantized all layers (W4A8, group {}) in {:.0} ms; \
         decode runs ImFP on a {}-worker persistent pool",
        spec.group,
        t0.elapsed().as_secs_f64() * 1e3,
        engine.workers()
    );
    // Offline per-channel static KV calibration (as the paper's system
    // does) before serving.
    let calib: Vec<usize> = (0..32).map(|i| (i * 37 + 11) % 256).collect();
    q.calibrate_kv(&calib, 256);
    let mut r = q.reference_twin(1);
    q.add_sequence(0);

    // Teacher-forced decode: both models consume the FP32 argmax token,
    // so we can compare logits at every step.
    let prompt = [11usize, 42, 97, 5];
    let steps = 24;
    let mut pos = 0usize;
    let (mut lq, mut lr) = (None, None);
    for &t in &prompt {
        lq = Some(q.decode_step(&[t], &[0], &[pos]));
        lr = Some(r.decode_step(&[t], &[0], &[pos]));
        pos += 1;
    }
    let (mut lq, mut lr) = (lq.expect("prompt nonempty"), lr.expect("prompt nonempty"));

    println!("\nstep  token  fp32-token  logit-cosine  agree");
    let mut agree = 0usize;
    let t0 = Instant::now();
    for step in 0..steps {
        let tq = argmax(lq.row(0));
        let tr = argmax(lr.row(0));
        let e = error_stats(&lr, &lq);
        let a = tq == tr;
        agree += usize::from(a);
        println!(
            "{step:>4}  {tq:>5}  {tr:>10}  {:>12.4}  {}",
            e.cosine,
            if a { "yes" } else { " no" }
        );
        lq = q.decode_step(&[tr], &[0], &[pos]);
        lr = r.decode_step(&[tr], &[0], &[pos]);
        pos += 1;
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "\nagreement: {agree}/{steps} greedy tokens; {:.1} ms/step quantized decode",
        dt / steps as f64 * 1e3
    );
    let kv_tokens = q.kv[0].len_of(0).expect("sequence live");
    println!("KV cache: {kv_tokens} tokens cached per layer, INT8, paged");
    println!(
        "\nnote: synthetic random weights are a worst case for quantization —\n\
         attention over near-uniform scores amplifies noise exponentially and the\n\
         near-uniform logits make argmax a coin flip between close candidates.\n\
         Per-GEMM fidelity is >30 dB SQNR (see `quickstart`); trained models,\n\
         with peaked attention and separated logits, sit in the regime where the\n\
         paper reports preserved accuracy."
    );
}
