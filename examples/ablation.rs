//! The Figure-13 ablation, twice: once measured on real CPU threads
//! (LQQ vs QoQ dequantization × pipeline variants) and once on the
//! warp-group pipeline simulator with H800 throughput numbers.
//!
//! Run: `cargo run --release --example ablation`

use liquidgemm::core::packed::{PackedLqqLinear, PackedQoqLinear};
use liquidgemm::core::serial::{w4a8_lqq_serial, w4a8_qoq_serial};
use liquidgemm::prelude::*;
use liquidgemm::quant::act::QuantizedActivations;
use liquidgemm::quant::mat::Mat;
use liquidgemm::sim::pipeline_sim::ablation;
use liquidgemm::sim::specs::H800;
use std::time::Instant;

fn median(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut v: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[v.len() / 2]
}

fn main() {
    println!("== CPU-measured ablation (real kernels, this machine) ==\n");
    let (m, n, k) = (64, 2048, 2048);
    let w = Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.021).sin());
    let x = Mat::from_fn(m, k, |r, c| ((r + c) as f32 * 0.017).cos());
    let qa = QuantizedActivations::quantize(&x, None);
    let lqq = PackedLqqLinear::quantize(&w, 64);
    let qoq = PackedQoqLinear::quantize(&w, 64);
    let workers = std::thread::available_parallelism().map_or(4, |p| p.get().min(8));
    let lg = LiquidGemm::builder()
        .workers(workers)
        .task_rows(16)
        .stages(2 * workers)
        .build()
        .expect("valid config");
    let weights = W4A8Weights::lqq(lqq.clone());

    let t_base = median(3, || {
        std::hint::black_box(w4a8_qoq_serial(&qa.q, &qa.scales, &qoq));
    });
    let t_lqq = median(3, || {
        std::hint::black_box(w4a8_lqq_serial(&qa.q, &qa.scales, &lqq));
    });
    let t_excp = median(3, || {
        std::hint::black_box(lg.gemm(&qa.q, &qa.scales, &weights, KernelKind::ExCp));
    });
    let t_imfp = median(3, || {
        std::hint::black_box(lg.gemm(&qa.q, &qa.scales, &weights, KernelKind::ImFp));
    });
    println!("  baseline (QoQ dequant, serial) : {:8.2} ms", t_base * 1e3);
    println!(
        "  +LQQ            (serial)       : {:8.2} ms  ({:.2}x)",
        t_lqq * 1e3,
        t_base / t_lqq
    );
    println!(
        "  +LQQ +ExCP ({workers} workers)        : {:8.2} ms  ({:.2}x)",
        t_excp * 1e3,
        t_base / t_excp
    );
    println!(
        "  +LQQ +ImFP ({workers} workers)        : {:8.2} ms  ({:.2}x)",
        t_imfp * 1e3,
        t_base / t_imfp
    );
    println!("  ImFP over ExCP: {:.2}x", t_excp / t_imfp);

    println!("\n== Dequant-backend sweep (ImFP, {workers} workers, same shapes) ==\n");
    for backend in registry() {
        let bw = W4A8Weights::quantize(&w, 64, backend.id());
        let t = median(3, || {
            std::hint::black_box(lg.gemm(&qa.q, &qa.scales, &bw, KernelKind::ImFp));
        });
        let c = backend.cost();
        println!(
            "  {:8} : {:8.2} ms  (model alpha {:4.2}, {:.3} B/elem, overlap {})",
            backend.id().to_string(),
            t * 1e3,
            c.alpha,
            c.weight_bytes_per_elem,
            c.overlap_dq
        );
    }

    println!("\n== Simulated ablation (H800 warp-group pipeline model) ==\n");
    println!("  batch   Baseline      +LQQ     +ExCP     +ImFP   LQQ-gain  ImFP-gain");
    for m in [4usize, 16, 64, 256] {
        let r = ablation(&H800, m, 512);
        println!(
            "  {m:>5}   {:8.1}  {:8.1}  {:8.1}  {:8.1}    {:5.2}x     {:5.2}x",
            r.baseline * 1e6,
            r.lqq * 1e6,
            r.lqq_excp * 1e6,
            r.lqq_imfp * 1e6,
            r.baseline / r.lqq,
            r.lqq / r.lqq_imfp
        );
    }
    println!("  (times in us for a 512-iteration tile stream)");
}
