//! Quickstart: quantize a linear layer through a registered dequant
//! backend and run the W4A8 GEMM through every kernel variant.
//!
//! Run: `cargo run --release --example quickstart`

use liquidgemm::core::reference::{gemm_f32_ref, max_abs_diff};
use liquidgemm::prelude::*;
use liquidgemm::quant::act::QuantizedActivations;
use liquidgemm::quant::mat::Mat;
use liquidgemm::quant::metrics::error_stats;
use std::time::Instant;

fn main() {
    // A synthetic linear layer: N = 1024 output features, K = 2048.
    let (m, n, k) = (32, 1024, 2048);
    let w = Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.013).sin() * 0.5);
    let x = Mat::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.029).cos() * 2.0);
    println!("GEMM: Y[{m}x{n}] = X[{m}x{k}] . W^T[{k}x{n}]\n");

    // One LiquidGemm handle owns the persistent worker pool; the
    // builder also selects the dequant backend every pack_weights call
    // routes through.
    let lg = LiquidGemm::builder()
        .backend(BackendId::Lqq)
        .build()
        .expect("valid config");

    // Offline: quantize + pack through the configured backend
    // (two-level LiquidQuant quantization + dual-MMA packing).
    let t0 = Instant::now();
    let weights = lg.pack_weights(&w, 64);
    println!(
        "quantized W to 4-bit via '{}' in {:.1} ms ({} KiB packed vs {} KiB fp32)",
        weights.backend(),
        t0.elapsed().as_secs_f64() * 1e3,
        weights.weight_bytes() / 1024,
        n * k * 4 / 1024
    );

    // Online: per-token INT8 activation quantization.
    let qa = QuantizedActivations::quantize(&x, None);

    // The FP32 oracle and the quantization error of the W4A8 result.
    let oracle = gemm_f32_ref(&x, &w);
    let y = lg.gemm(&qa.q, &qa.scales, &weights, KernelKind::Serial).y;
    let e = error_stats(&oracle, &y);
    println!(
        "W4A8 vs FP32 oracle: SQNR {:.1} dB, cosine {:.5}\n",
        e.sqnr_db, e.cosine
    );

    // Every kernel variant must agree bit-for-bit.
    println!("kernel variants (all bit-identical):");
    for kind in [
        KernelKind::Serial,
        KernelKind::FlatParallel,
        KernelKind::ExCp,
        KernelKind::ImFp,
    ] {
        let t0 = Instant::now();
        let out = lg.gemm(&qa.q, &qa.scales, &weights, kind).y;
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(max_abs_diff(&out, &y), 0.0);
        println!("  {kind:?}: {:.2} ms", dt * 1e3);
    }

    // Every registered dequant backend runs on the same pipelines; the
    // SWAR-family backends (lqq, qoq, lut) agree with the FP32 oracle
    // to the same SQNR, the codebook backend trades accuracy for
    // 2-bit-effective weights.
    println!("\ndequant backends (ImFP, same shapes):");
    for backend in registry() {
        let t0 = Instant::now();
        let bw = W4A8Weights::quantize(&w, 64, backend.id());
        let pack_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let yb = lg.gemm(&qa.q, &qa.scales, &bw, KernelKind::ImFp).y;
        let dt = t0.elapsed().as_secs_f64();
        let eb = error_stats(&oracle, &yb);
        println!(
            "  {:8} {:34} pack {pack_ms:7.1} ms, gemm {:.2} ms, SQNR {:5.1} dB",
            backend.id().to_string(),
            backend.name(),
            dt * 1e3,
            eb.sqnr_db
        );
    }
}
