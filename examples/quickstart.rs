//! Quickstart: quantize a linear layer with LiquidQuant and run the
//! W4A8 GEMM through every kernel variant.
//!
//! Run: `cargo run --release --example quickstart`

use liquidgemm::core::packed::{PackedLqqLinear, PackedQoqLinear};
use liquidgemm::core::reference::{gemm_f32_ref, max_abs_diff};
use liquidgemm::prelude::*;
use liquidgemm::quant::act::QuantizedActivations;
use liquidgemm::quant::mat::Mat;
use liquidgemm::quant::metrics::error_stats;
use std::time::Instant;

fn main() {
    // A synthetic linear layer: N = 1024 output features, K = 2048.
    let (m, n, k) = (32, 1024, 2048);
    let w = Mat::from_fn(n, k, |r, c| ((r * k + c) as f32 * 0.013).sin() * 0.5);
    let x = Mat::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.029).cos() * 2.0);
    println!("GEMM: Y[{m}x{n}] = X[{m}x{k}] . W^T[{k}x{n}]\n");

    // Offline: two-level LiquidQuant quantization + dual-MMA packing.
    let t0 = Instant::now();
    let lqq = PackedLqqLinear::quantize(&w, 64);
    println!(
        "quantized W to 4-bit in {:.1} ms ({} KiB packed vs {} KiB fp32)",
        t0.elapsed().as_secs_f64() * 1e3,
        lqq.weight_bytes() / 1024,
        n * k * 4 / 1024
    );

    // Online: per-token INT8 activation quantization.
    let qa = QuantizedActivations::quantize(&x, None);

    // The FP32 oracle and the quantization error of the W4A8 result.
    // One LiquidGemm handle owns the persistent worker pool; build it
    // once and reuse it for every call below.
    let lg = LiquidGemm::builder().build().expect("valid config");
    let oracle = gemm_f32_ref(&x, &w);
    let weights = W4A8Weights::Lqq(lqq.clone());
    let y = lg.gemm(&qa.q, &qa.scales, &weights, KernelKind::Serial).y;
    let e = error_stats(&oracle, &y);
    println!(
        "W4A8 vs FP32 oracle: SQNR {:.1} dB, cosine {:.5}\n",
        e.sqnr_db, e.cosine
    );

    // Every kernel variant must agree bit-for-bit.
    println!("kernel variants (all bit-identical):");
    for kind in [
        KernelKind::Serial,
        KernelKind::FlatParallel,
        KernelKind::ExCp,
        KernelKind::ImFp,
    ] {
        let t0 = Instant::now();
        let out = lg.gemm(&qa.q, &qa.scales, &weights, kind).y;
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(max_abs_diff(&out, &y), 0.0);
        println!("  {kind:?}: {:.2} ms", dt * 1e3);
    }

    // The QoQ baseline kernel: same accuracy class, more ALU work.
    let qoq = W4A8Weights::Qoq(PackedQoqLinear::quantize(&w, 64));
    let t0 = Instant::now();
    let yq = lg.gemm(&qa.q, &qa.scales, &qoq, KernelKind::Serial).y;
    let dt = t0.elapsed().as_secs_f64();
    let eq = error_stats(&oracle, &yq);
    println!(
        "\nQoQ baseline (serial): {:.2} ms, SQNR {:.1} dB — same grid, more instructions",
        dt * 1e3,
        eq.sqnr_db
    );
}
