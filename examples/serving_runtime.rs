//! Executable continuous-batching serving: real batched GEMMs on the
//! persistent pool, driven by the same request API as the simulator.
//!
//! A `TinyLlm` (every projection a W4A8 GEMM on a shared
//! `Arc<LiquidGemm>` pool) serves a bursty workload through
//! `ServingRuntime`: admission against the paged KV reservation rule,
//! batched prefill, iteration-level decode where the whole running
//! batch advances in one M=batch forward pass, deadlines, and a
//! bounded queue.
//!
//! Run: `cargo run --release --example serving_runtime`

use liquidgemm::prelude::*;
use std::sync::Arc;

fn main() {
    let pool = Arc::new(
        LiquidGemm::builder()
            .workers(4)
            .build()
            .expect("valid pool config"),
    );
    let spec = ModelSpec::tiny();
    let mut model = TinyLlm::synthetic_with_engine(spec, 2048, KernelKind::ImFp, pool);

    // A bursty workload: an opening wave, stragglers with deadlines,
    // and a tail burst that overflows the bounded queue.
    let mut requests = Vec::new();
    for i in 0..8u64 {
        let prompt: Vec<usize> = (0..12)
            .map(|t| (i as usize * 11 + t * 3) % spec.vocab)
            .collect();
        requests.push(PromptRequest::new(
            Request::new(i, prompt.len(), 24, 0.0),
            prompt,
        ));
    }
    for i in 8..12u64 {
        let prompt: Vec<usize> = (0..8).map(|t| (i as usize * 7 + t) % spec.vocab).collect();
        requests.push(PromptRequest::new(
            Request::new(i, prompt.len(), 16, 0.010).with_deadline(0.002),
            prompt,
        ));
    }
    for i in 12..40u64 {
        let prompt: Vec<usize> = (0..8).map(|t| (i as usize * 5 + t) % spec.vocab).collect();
        requests.push(PromptRequest::new(
            Request::new(i, prompt.len(), 16, 0.020),
            prompt,
        ));
    }

    let mut runtime = ServingRuntime::builder()
        .max_batch(8)
        .page_tokens(16)
        .max_queue(12)
        .kv_budget_tokens(2048)
        .build()
        .expect("valid runtime config");
    let stats = runtime.run(&mut model, requests);

    println!("== executable continuous-batching serving (TinyLlm, ImFP, 4-worker pool) ==\n");
    println!(
        "  {:>3} finished   {:>3} timed out   {:>3} rejected   (of {})",
        stats.finished(),
        stats.timed_out(),
        stats.rejected(),
        stats.completions.len()
    );
    println!(
        "  {} tokens in {:.1} ms  →  {:.0} tok/s sustained",
        stats.generated_tokens,
        stats.makespan * 1e3,
        stats.throughput()
    );
    println!(
        "  peak batch {}   decode iterations {}   mean latency {:.2} ms   p95 {:.2} ms",
        stats.peak_batch,
        stats.decode_steps,
        stats.mean_latency() * 1e3,
        stats.latency_percentile(95.0) * 1e3
    );
    println!(
        "\n  KV pages after drain: {}/{} free (leak-free)",
        runtime.kv().free_pages(),
        runtime.kv().total_pages()
    );
}
