//! Observability tour: enable the zero-dependency telemetry layer, run
//! one instrumented workload per subsystem, and dump the full registry
//! in both Prometheus text format and JSON.
//!
//! Run: `cargo run --release --example telemetry`
//!
//! The output demonstrates the three instrumented layers:
//! * `lq-core` — per-variant call-latency histograms (`lq_gemm_ns`),
//!   staging-span timings and load-stall counters from the pipeline
//!   drivers, plus the persistent worker pool's own families:
//!   `lq_pool_queue_depth`, per-worker `lq_pool_jobs_total`,
//!   `lq_pool_busy_ns_total`, and `lq_pool_job_ns`.
//! * `lq-serving` — decode-step latency histogram (p50/p95/p99),
//!   per-step batch-size histogram, KV-page occupancy gauges, admission
//!   and OOM counters, end-of-run tokens/s.
//! * `lq-sim::pipeline_sim` — modelled per-resource busy time (TMA /
//!   CUDA cores / Tensor cores) for each pipelining discipline.

use liquidgemm::models::configs::LLAMA2_7B;
use liquidgemm::prelude::*;
use liquidgemm::quant::act::QuantizedActivations;
use liquidgemm::quant::mat::Mat;
use liquidgemm::sim::pipeline_sim::ablation;
use liquidgemm::sim::specs::H800;
use liquidgemm::telemetry;
use lq_rng::Rng;

fn main() {
    // Telemetry is off by default (the kernels pay one relaxed atomic
    // load per call); flip it on for this tour.
    telemetry::enable();

    // ── 1. Instrumented CPU pipelines: ImFP and ExCP ────────────────
    let mut rng = Rng::new(42);
    let (m, n, k) = (8, 256, 512);
    let w = Mat::from_fn(n, k, |_, _| rng.range_f32(-1.0, 1.0));
    let x = Mat::from_fn(m, k, |_, _| rng.range_f32(-2.0, 2.0));
    let qa = QuantizedActivations::quantize(&x, None);
    let weights = W4A8Weights::quantize(&w, 64, BackendId::Lqq);
    // One persistent pool serves every call — its per-worker counters
    // (lq_pool_jobs_total, lq_pool_busy_ns_total) accumulate below.
    let lg = LiquidGemm::builder()
        .workers(4)
        .task_rows(8)
        .stages(8)
        .build()
        .expect("valid config");
    for _ in 0..4 {
        let _ = lg.gemm(&qa.q, &qa.scales, &weights, KernelKind::ImFp);
        let _ = lg.gemm(&qa.q, &qa.scales, &weights, KernelKind::ExCp);
    }
    println!(
        "ran 4x ImFP + 4x ExCP GEMMs ({m}x{n}x{k}) on a {}-worker pool",
        lg.workers()
    );

    // ── 2. Instrumented serving loop: continuous-batching decode ────
    let sys = ServingSystem::of(SystemId::LiquidServe);
    let requests: Vec<Request> = (0..96)
        .map(|i| {
            Request::new(
                i,
                128 + (i as usize % 5) * 64,
                64 + (i as usize % 3) * 32,
                i as f64 * 0.002,
            )
        })
        .collect();
    let stats = run_schedule(
        &sys,
        &H800,
        &LLAMA2_7B,
        SchedulerConfig::default(),
        &requests,
    );
    println!(
        "scheduled {} requests: {} decode steps, {:.0} tokens/s",
        requests.len(),
        stats.decode_steps,
        stats.throughput()
    );

    // ── 3. Instrumented simulator: Figure-13 pipeline ablation ──────
    let ab = ablation(&H800, 64, 256);
    println!(
        "sim ablation (m=64): baseline {:.3} ms -> ImFP {:.3} ms\n",
        ab.baseline * 1e3,
        ab.lqq_imfp * 1e3
    );

    // ── Export ──────────────────────────────────────────────────────
    println!("================ Prometheus text format ================");
    print!("{}", telemetry::registry().to_prometheus());
    println!("==================== JSON snapshot =====================");
    println!("{}", telemetry::registry().to_json());
}
