//! Run one full (scaled-down) LLaMA-style decoder layer's GEMMs through
//! LiquidGEMM end-to-end on CPU: fused QKV projection, attention output
//! projection, gate+up FFN, and down FFN, all W4A8 with per-token
//! activation quantization, validated against the FP32 reference.
//!
//! The layer uses LLaMA2-7B's aspect ratios at 1/4 width so the example
//! finishes quickly in debug builds; pass `--full` for the real 4096 /
//! 11008 shapes (use `--release`).
//!
//! Run: `cargo run --release --example llama_layer [-- --full]`

use liquidgemm::core::reference::gemm_f32_ref;
use liquidgemm::prelude::*;
use liquidgemm::quant::act::QuantizedActivations;
use liquidgemm::quant::mat::Mat;
use liquidgemm::quant::metrics::error_stats;
use std::time::Instant;

struct Linear {
    name: &'static str,
    packed: W4A8Weights,
    fp: Mat<f32>,
}

fn make_linear(name: &'static str, n: usize, k: usize, seed: usize) -> Linear {
    let fp = Mat::from_fn(n, k, |r, c| {
        let i = seed.wrapping_mul(7919).wrapping_add(r * k + c);
        ((i as f32) * 0.000_37).sin() * 0.4
    });
    Linear {
        name,
        packed: W4A8Weights::quantize(&fp, 64, BackendId::Lqq),
        fp,
    }
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (hidden, inter) = if full { (4096, 11008) } else { (1024, 2752) };
    let batch = 16;
    println!("decoder layer (hidden {hidden}, intermediate {inter}), batch {batch}, W4A8 ImFP\n");

    let layers = [
        make_linear("qkv_proj", 3 * hidden, hidden, 1),
        make_linear("o_proj", hidden, hidden, 2),
        make_linear("gate_up", 2 * inter, hidden, 3),
        make_linear("down", hidden, inter, 4),
    ];

    // One pool for the whole layer; workers default to the machine's
    // available parallelism.
    let lg = LiquidGemm::builder()
        .task_rows(16)
        .stages(8)
        .build()
        .expect("valid config");

    // Hidden states entering the layer.
    let mut h = Mat::from_fn(batch, hidden, |r, c| {
        ((r * hidden + c) as f32 * 0.011).cos()
    });
    let mut h_ref = h.clone();
    let mut total = 0.0f64;

    for lin in &layers {
        // Per-token dynamic INT8 quantization of the activations.
        let qa = QuantizedActivations::quantize(&h, None);
        let t0 = Instant::now();
        let y = lg.gemm(&qa.q, &qa.scales, &lin.packed, KernelKind::ImFp).y;
        let dt = t0.elapsed().as_secs_f64();
        total += dt;

        // FP32 reference for the same step (propagating the FP path).
        let y_ref = gemm_f32_ref(&h_ref, &lin.fp);
        let e = error_stats(&y_ref, &y);
        println!(
            "  {:9} [{:5}x{:5}]  {:8.2} ms   SQNR {:5.1} dB  cosine {:.5}",
            lin.name,
            lin.fp.rows(),
            lin.fp.cols(),
            dt * 1e3,
            e.sqnr_db,
            e.cosine
        );
        assert!(e.cosine > 0.98, "quantized output diverged");

        // Feed forward whichever output matches the next GEMM's K; for
        // shape changes, re-project by truncation (this is a kernel
        // demo, not a numerics-faithful transformer).
        let next_k = hidden;
        h = Mat::from_fn(batch, next_k, |r, c| *y.get(r, c % y.cols()));
        h_ref = Mat::from_fn(batch, next_k, |r, c| *y_ref.get(r, c % y_ref.cols()));
    }

    println!("\nlayer GEMM total: {:.2} ms", total * 1e3);
    println!("all four projections within quantization tolerance of FP32.");
}
