//! Tracing tour: record a fully-instrumented batch-8 serving run,
//! export it as a Perfetto-loadable Chrome trace, and reconstruct
//! where every request's latency went from the events alone.
//!
//! Run: `cargo run --release --example trace [-- <out.json>]`
//!
//! The flow demonstrates the whole `lq-trace` pipeline:
//! 1. enable tracing + telemetry (both off by default — one relaxed
//!    atomic load per record site when disabled);
//! 2. serve 16 requests through `ServingRuntime` (max_batch = 8) on a
//!    real `TinyLlm` over a shared 4-worker persistent GEMM pool —
//!    request lifecycle events carry the serving loop's virtual clock,
//!    pool events carry wall time, and GEMM jobs inherit the request /
//!    batch-step correlation IDs;
//! 3. export Chrome trace-event JSON (`target/trace_example.json` by
//!    default; open it at <https://ui.perfetto.dev> — one track per
//!    worker, one per request);
//! 4. run the analyzer: per-request critical paths (queue / prefill /
//!    decode / other) and pool attribution (queueing vs steal delay vs
//!    compute, worker-overlap ratio);
//! 5. cross-check: the analyzer's summed per-request totals must agree
//!    with the independently recorded `lq_serving_request_latency_ns`
//!    histogram to within 5% — the trace is evidence, not decoration.

use liquidgemm::prelude::*;
use liquidgemm::telemetry;
use liquidgemm::trace;
use std::sync::Arc;

const REQUESTS: u64 = 16;
const PROMPT_LEN: usize = 12;
const OUTPUT_LEN: usize = 24;

fn main() {
    // Default under the workspace's target/ — anchored to the manifest
    // dir, not the CWD, so `cargo run --example trace` lands in the
    // same place from any invocation directory and never dirties the
    // repo root.
    let out = std::env::args().nth(1).unwrap_or_else(|| {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target");
        let _ = std::fs::create_dir_all(&dir);
        dir.join("trace_example.json").display().to_string()
    });
    telemetry::enable();
    trace::enable();

    // ── Serve a batch-8 workload on a shared persistent pool ────────
    let spec = ModelSpec::tiny();
    let pool = Arc::new(
        LiquidGemm::builder()
            .workers(4)
            .build()
            .expect("valid pool config"),
    );
    let mut model = TinyLlm::synthetic_with_engine(spec, 2048, KernelKind::ImFp, Arc::clone(&pool));
    let requests: Vec<PromptRequest> = (0..REQUESTS)
        .map(|id| {
            let prompt: Vec<usize> = (0..PROMPT_LEN)
                .map(|t| (id as usize * 31 + t * 7 + 1) % spec.vocab)
                .collect();
            PromptRequest::new(
                Request::new(id, PROMPT_LEN, OUTPUT_LEN, id as f64 * 0.0004),
                prompt,
            )
        })
        .collect();
    let cfg = SchedulerConfig::builder()
        .max_batch(8)
        .page_tokens(16)
        .build()
        .expect("valid config");
    let stats = ServingRuntime::new(cfg, 2048 * 16).run(&mut model, requests);
    println!(
        "served {REQUESTS} requests x {OUTPUT_LEN} tokens: {} decode steps, {:.0} tok/s",
        stats.decode_steps,
        stats.throughput()
    );
    // Workers record `job_finish` *after* the reply that unblocks the
    // caller; joining the pool flushes every in-flight event.
    drop(model);
    drop(pool);

    // ── Export for Perfetto ─────────────────────────────────────────
    let events = trace::take_events();
    let json = trace::chrome::export(&events);
    trace::json::validate(&json).expect("export must be valid Chrome trace JSON");
    std::fs::write(&out, &json).expect("write trace file");
    println!(
        "\n{} events ({} dropped) -> {out} — open at https://ui.perfetto.dev",
        events.len(),
        trace::dropped_total()
    );

    // ── Analyzer: per-request critical paths ────────────────────────
    let paths = trace::analyze::request_paths(&events);
    println!("\nper-request critical path (virtual-clock ms):");
    println!(
        "{:>4}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}",
        "req", "queue", "prefill", "decode", "other", "total"
    );
    let ms = |ns: u64| format!("{:.3}", ns as f64 * 1e-6);
    for p in &paths {
        println!(
            "{:>4}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}",
            p.id,
            ms(p.queue_ns),
            ms(p.prefill_ns),
            ms(p.decode_ns),
            ms(p.other_ns),
            ms(p.total_ns)
        );
    }

    // ── Analyzer: pool attribution ──────────────────────────────────
    let pa = trace::analyze::pool_attribution(&events);
    println!(
        "\npool: {} jobs ({} stolen) on {} workers — queue {} ms, steal-delay {} ms, \
         compute {} ms, wall {} ms, overlap {:.2}",
        pa.jobs,
        pa.stolen_jobs,
        pa.workers,
        ms(pa.queue_ns),
        ms(pa.steal_ns),
        ms(pa.compute_ns),
        ms(pa.wall_ns),
        pa.overlap_ratio
    );

    // ── Cross-check against the independent histogram ───────────────
    let hist_sum = telemetry::registry()
        .histogram("lq_serving_request_latency_ns")
        .snapshot()
        .sum;
    let path_sum: u64 = paths
        .iter()
        .filter(|p| p.status == 0)
        .map(|p| p.total_ns)
        .sum();
    assert!(hist_sum > 0, "telemetry recorded no request latencies");
    let rel = (path_sum as f64 - hist_sum as f64).abs() / hist_sum as f64;
    println!(
        "\nattribution check: analyzer sum {} ms vs latency histogram sum {} ms ({:.3}% apart)",
        ms(path_sum),
        ms(hist_sum),
        rel * 100.0
    );
    assert!(
        rel < 0.05,
        "trace-derived latency diverges from telemetry by {:.1}% (>5%)",
        rel * 100.0
    );
}
