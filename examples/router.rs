//! Sharded multi-replica serving with SLO tiers, preemption, and
//! chaos-driven failover — the whole `lq-router` surface in one run.
//!
//! Three `TinyLlm` replicas (each its own engine over one shared
//! persistent GEMM pool) serve a seeded open-loop Poisson trace with a
//! 25/45/30 low/normal/high tier mix. The router shards by
//! least-loaded tokens; each replica runs SLO-tiered admission and
//! priority-KV preemption. Mid-run, a chaos plan kills replica 0 at
//! its third scheduler step: its running sequences are evacuated (KV
//! fully released) and re-route to the survivors, which finish
//! everything.
//!
//! Run: `cargo run --release --example router`

use liquidgemm::prelude::*;
use std::sync::Arc;

fn main() {
    let pool = Arc::new(
        LiquidGemm::builder()
            .workers(4)
            .build()
            .expect("valid pool config"),
    );
    let spec = ModelSpec::tiny();

    // Seeded open-loop trace: ~40 Poisson arrivals, mixed tiers.
    let mut trace = TraceConfig::poisson(400.0, 0.1);
    trace.mix = TierMix {
        low_pct: 25,
        normal_pct: 45,
        high_pct: 30,
    };
    trace.prompt_len = (8, 16);
    trace.output_len = (8, 16);
    let requests = trace
        .generate_prompts(7, spec.vocab)
        .expect("valid trace config");
    let n = requests.len();

    // Kill replica 0 at its 3rd scheduler step (dead stays dead).
    let injector = Arc::new(FaultInjector::new(FaultPlan::quiet().replica_kill_at(0, 3)));

    let router = ServingRouter::builder()
        .replicas(3)
        .policy(RoutingPolicy::LeastLoaded)
        .runtime(
            ServingRuntime::builder()
                .max_batch(8)
                .page_tokens(16)
                .max_queue(16)
                .admission(AdmissionPolicy::SloTiered {
                    low_share_pct: 25,
                    normal_share_pct: 60,
                })
                .preemption(PreemptionPolicy::PriorityKv)
                .kv_budget_tokens(512),
        )
        .fault_injector(injector)
        .build()
        .expect("valid router config");

    let out = router.run(
        |_replica| TinyLlm::synthetic_with_engine(spec, 2048, KernelKind::ImFp, Arc::clone(&pool)),
        requests,
    );

    println!("== sharded serving router (3x TinyLlm, shared 4-worker pool) ==\n");
    for r in &out.replicas {
        println!(
            "  replica {}: {:>2} routed  {:>2} finished  {:>2} preemptions  {:>4.0} tok/s{}",
            r.replica,
            r.routed,
            r.stats.finished(),
            r.stats.preemptions,
            r.stats.goodput(),
            if r.killed { "  [KILLED]" } else { "" }
        );
    }
    let merged = out.merged();
    println!(
        "\n  {} arrivals → {} completions ({} finished, {} rejected) in {} wave(s)",
        n,
        merged.completions.len(),
        merged.finished(),
        merged.rejected(),
        out.waves
    );
    println!(
        "  {} failover(s) absorbed, {} request(s) re-routed to survivors",
        out.failovers, out.rerouted
    );
    for tier in [Priority::High, Priority::Normal, Priority::Low] {
        println!(
            "  {:>6}: p99 latency {:.2} ms over {} finished",
            tier.label(),
            merged.tier_latency_percentile(tier, 99.0) * 1e3,
            merged.tier_count(tier, CompletionStatus::Finished),
        );
    }
    assert!(out.unserved.is_empty(), "survivors must absorb everything");
}
